// Service-layer throughput bench — the perf baseline for the PR 5 typed
// query surface. A two-graph CliqueService catalog (one graph in-memory, one
// mmap-loaded from a snapshot, as a real serving process would host them)
// answers the same mixed query set three ways:
//
//   sequential — every query one at a time through service.run(), the
//                no-executor serving model;
//   batch      — one QueryBatch::answers() per graph (cost-model scheduling,
//                per-thread worker splits), graphs back to back;
//   streaming  — one QueryStream per graph, every query submitted up front,
//                both graphs draining concurrently — the long-lived server
//                loop shape.
//
// Results are cross-checked query by query across the three modes (non-zero
// exit on mismatch) and written to a machine-readable JSON report:
//
//   ./bench_service [--out BENCH_pr5.json] [--reps 3] [--executors 0 = auto]
//
// Schema: {"bench", "workers", "executors", "graphs": [{"name", n, m}],
// "queries", "sequential_seconds", "batch_seconds", "streaming_seconds",
// "batch_speedup", "streaming_speedup"}
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

/// The serving mix per graph: mostly small counts and probes over a few k,
/// a bounded listing, a spectrum, and a max-clique.
std::vector<Query> make_query_mix() {
  std::vector<Query> queries;
  for (int rep = 0; rep < 4; ++rep) {
    for (int k = 3; k <= 6; ++k) {
      Query q;
      q.kind = QueryKind::Count;
      q.k = k;
      queries.push_back(q);
    }
  }
  for (int k = 3; k <= 6; ++k) {
    Query q;
    q.kind = QueryKind::HasClique;
    q.k = k;
    queries.push_back(q);
  }
  {
    Query q;
    q.kind = QueryKind::List;
    q.k = 4;
    q.opts.result_limit = 50;
    queries.push_back(q);
  }
  {
    Query q;
    q.kind = QueryKind::Spectrum;
    q.kmax = 6;
    queries.push_back(q);
  }
  {
    Query q;
    q.kind = QueryKind::MaxClique;
    q.opts.want_witness = false;
    queries.push_back(q);
  }
  return queries;
}

/// Mode-independent digest of an answer, for the cross-check. (List answers
/// compare by size — a limit-cut listing may legitimately pick different
/// witnesses per run.)
std::string digest(const Answer& a) {
  std::string d = query_kind_name(a.kind);
  d += '/';
  d += std::to_string(a.k);
  d += ':';
  d += std::to_string(a.count);
  d += ',';
  d += std::to_string(a.omega);
  d += ',';
  d += a.found ? '1' : '0';
  d += ',';
  d += std::to_string(a.cliques.size());
  for (const count_t c : a.spectrum.counts) {
    d += ' ';
    d += std::to_string(c);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int executors = static_cast<int>(cli.get_int("executors", 0));
  const std::string out_path = cli.get_string("out", "BENCH_pr5.json");

  // The catalog: the first smoke graph served in-memory, the second from a
  // snapshot prepared on the spot (mmap-loaded, zero preparation at serve
  // time) — one of each source, as a serving process would mix them.
  std::vector<bench::SmokeGraph> smoke = bench::smoke_graphs();
  if (smoke.size() < 2) {
    std::fprintf(stderr, "bench_service: needs at least two smoke graphs\n");
    return 1;
  }
  // Pid-unique path: concurrent runs (CI jobs sharing a runner) must not
  // overwrite or delete each other's snapshot mid-open.
  const std::filesystem::path snap_path =
      std::filesystem::temp_directory_path() /
      ("bench_service_" + std::to_string(::getpid()) + ".c3snap");
  {
    CliqueOptions opts;
    opts.algorithm = Algorithm::C3List;
    const PreparedGraph offline(smoke[1].graph, opts);
    snapshot::write(snap_path, offline);
  }

  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  CliqueService service;
  service.add_graph(smoke[0].name, Graph(smoke[0].graph), opts);
  service.add_snapshot(smoke[1].name, snap_path);
  const std::vector<std::string> ids = {smoke[0].name, smoke[1].name};
  for (const std::string& id : ids) service.prepare(id);

  const std::vector<Query> queries = make_query_mix();
  const std::size_t total_queries = queries.size() * ids.size();

  double seq_best = 0.0, batch_best = 0.0, stream_best = 0.0;
  std::map<std::string, std::vector<std::string>> digests;  // mode -> per-query digests
  for (int rep = 0; rep < reps; ++rep) {
    // Sequential: one query at a time, graph by graph.
    {
      std::vector<std::string> d;
      WallTimer timer;
      for (const std::string& id : ids) {
        for (const Query& q : queries) d.push_back(digest(service.run(id, q)));
      }
      const double s = timer.seconds();
      seq_best = rep == 0 ? s : std::min(seq_best, s);
      digests["sequential"] = std::move(d);
    }
    // Batch: one QueryBatch per graph.
    {
      std::vector<std::string> d;
      WallTimer timer;
      for (const std::string& id : ids) {
        QueryBatch batch(service.engine(id));
        for (const Query& q : queries) (void)batch.add(q);
        for (const Answer& a : batch.answers()) d.push_back(digest(a));
      }
      const double s = timer.seconds();
      batch_best = rep == 0 ? s : std::min(batch_best, s);
      digests["batch"] = std::move(d);
    }
    // Streaming: both graphs' streams loaded up front, drained concurrently.
    {
      std::vector<std::string> d;
      WallTimer timer;
      {
        QueryStream a(service.engine(ids[0]), executors);
        QueryStream b(service.engine(ids[1]), executors);
        for (const Query& q : queries) (void)a.submit(q);
        for (const Query& q : queries) (void)b.submit(q);
        for (auto& [ticket, answer] : a.drain()) {
          (void)ticket;
          d.push_back(digest(answer));
        }
        for (auto& [ticket, answer] : b.drain()) {
          (void)ticket;
          d.push_back(digest(answer));
        }
      }
      const double s = timer.seconds();
      stream_best = rep == 0 ? s : std::min(stream_best, s);
      digests["streaming"] = std::move(d);
    }
  }
  std::filesystem::remove(snap_path);

  // Cross-check: every mode answered every query identically.
  bool mismatch = false;
  for (const char* mode : {"batch", "streaming"}) {
    const auto& got = digests[mode];
    const auto& want = digests["sequential"];
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (got[i] != want[i]) {
        std::printf("!! %s query %zu: '%s' != sequential '%s'\n", mode, i, got[i].c_str(),
                    want[i].c_str());
        mismatch = true;
      }
    }
  }

  const double batch_speedup = batch_best > 0.0 ? seq_best / batch_best : 0.0;
  const double stream_speedup = stream_best > 0.0 ? seq_best / stream_best : 0.0;
  Table t({"mode", "queries", "seconds", "speedup"});
  t.add_row({"sequential", std::to_string(total_queries), strfmt("%.3f", seq_best), "1.00x"});
  t.add_row({"batch", std::to_string(total_queries), strfmt("%.3f", batch_best),
             strfmt("%.2fx", batch_speedup)});
  t.add_row({"streaming", std::to_string(total_queries), strfmt("%.3f", stream_best),
             strfmt("%.2fx", stream_speedup)});
  t.print();

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\"bench\": \"service\", \"workers\": %d, \"executors\": %d, \"graphs\": [",
               num_workers(), executors);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Graph& g = service.engine(ids[i]).graph();
    std::fprintf(json, "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu}", i > 0 ? ", " : "",
                 ids[i].c_str(), g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));
  }
  std::fprintf(json,
               "], \"queries\": %zu, \"sequential_seconds\": %.6f, \"batch_seconds\": %.6f, "
               "\"streaming_seconds\": %.6f, \"batch_speedup\": %.4f, "
               "\"streaming_speedup\": %.4f}\n",
               total_queries, seq_best, batch_best, stream_best, batch_speedup, stream_speedup);
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  if (mismatch) {
    std::fprintf(stderr, "bench_service: cross-check FAILED\n");
    return 1;
  }
  return 0;
}
