// Deterministic structured families: hypercube, complete, Turán, grid, star,
// path, cycle. These have known degeneracy / community degeneracy / clique
// counts and anchor the closed-form tests.
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {

Graph hypercube(node_t dimension) {
  const node_t n = node_t{1} << dimension;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * dimension / 2);
  for (node_t v = 0; v < n; ++v) {
    for (node_t d = 0; d < dimension; ++d) {
      const node_t w = v ^ (node_t{1} << d);
      if (v < w) edges.push_back(Edge{v, w});
    }
  }
  return build_graph(edges, n);
}

Graph complete_graph(node_t n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (node_t u = 0; u < n; ++u) {
    for (node_t v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  }
  return build_graph(edges, n);
}

Graph turan_graph(node_t n, node_t r) {
  // Vertex v belongs to part v % r; parts are automatically balanced.
  EdgeList edges;
  for (node_t u = 0; u < n; ++u) {
    for (node_t v = u + 1; v < n; ++v) {
      if (r != 0 && u % r != v % r) edges.push_back(Edge{u, v});
    }
  }
  return build_graph(edges, n);
}

Graph grid_graph(node_t rows, node_t cols) {
  EdgeList edges;
  auto id = [cols](node_t r, node_t c) { return r * cols + c; };
  for (node_t r = 0; r < rows; ++r) {
    for (node_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  }
  return build_graph(edges, rows * cols);
}

Graph star_graph(node_t n) {
  EdgeList edges;
  for (node_t v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return build_graph(edges, n);
}

Graph path_graph(node_t n) {
  EdgeList edges;
  for (node_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, static_cast<node_t>(v + 1)});
  return build_graph(edges, n);
}

Graph cycle_graph(node_t n) {
  EdgeList edges;
  for (node_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, static_cast<node_t>(v + 1)});
  if (n >= 3) edges.push_back(Edge{static_cast<node_t>(n - 1), 0});
  return build_graph(edges, n);
}

Graph bipartite_plus_line(node_t half) {
  // Section 1.1: complete bipartite K_{half,half} (degeneracy half, no
  // triangles) plus a path through one side, creating Theta(n) triangles
  // while the community degeneracy stays 1.
  EdgeList edges;
  for (node_t u = 0; u < half; ++u) {
    for (node_t v = 0; v < half; ++v) {
      edges.push_back(Edge{u, static_cast<node_t>(half + v)});
    }
  }
  for (node_t u = 0; u + 1 < half; ++u) edges.push_back(Edge{u, static_cast<node_t>(u + 1)});
  return build_graph(edges, 2 * half);
}

}  // namespace c3
