#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

#include "clique/api.hpp"
#include "graph/digraph.hpp"
#include "obs/metrics.hpp"
#include "order/community_degeneracy.hpp"
#include "parallel/parallel.hpp"
#include "snapshot/mapped_file.hpp"
#include "triangle/communities.hpp"
#include "util/array_store.hpp"
#include "util/timer.hpp"

namespace c3::snapshot {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("c3::snapshot: " + what + ": " + path.string());
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

/// Element size each section kind must carry (the ABI the header's
/// node_bytes/edge_bytes fields pin down).
std::uint32_t expected_elem_bytes(SectionKind kind) {
  switch (kind) {
    case SectionKind::GraphOffsets:
    case SectionKind::GraphEdgeIds:
    case SectionKind::DagOutOffsets:
    case SectionKind::DagInOffsets:
    case SectionKind::CommOffsets:
    case SectionKind::EdgeOrderOrder:
    case SectionKind::EdgeOrderPos:
    case SectionKind::EdgeOrderCandOffsets:
      return sizeof(edge_t);
    case SectionKind::GraphEndpoints:
      return sizeof(Edge);
    case SectionKind::GraphAdjacency:
    case SectionKind::DagOutAdjacency:
    case SectionKind::DagInAdjacency:
    case SectionKind::DagArcSources:
    case SectionKind::DagRankToOriginal:
    case SectionKind::CommMembers:
    case SectionKind::EdgeOrderCandMembers:
      return sizeof(node_t);
  }
  return 0;
}

// ------------------------------------------------------------------ writing

struct PendingSection {
  SectionRecord rec;
  const void* payload = nullptr;
};

template <typename T>
void add_section(std::vector<PendingSection>& out, SectionKind kind, std::span<const T> data) {
  PendingSection s;
  s.rec.kind = static_cast<std::uint32_t>(kind);
  s.rec.elem_bytes = sizeof(T);
  s.rec.count = data.size();
  s.rec.checksum = checksum64(data.data(), data.size_bytes());
  s.payload = data.data();
  out.push_back(s);
}

void write_padding(std::ostream& out, std::uint64_t bytes) {
  static constexpr char zeros[kSectionAlign] = {};
  while (bytes > 0) {
    const std::uint64_t chunk = bytes < kSectionAlign ? bytes : kSectionAlign;
    out.write(zeros, static_cast<std::streamsize>(chunk));
    bytes -= chunk;
  }
}

// ------------------------------------------------------------------ reading

/// Header + section table, validated and copied out of the mapping (the
/// copies sidestep any alignment concern; sections stay in place).
struct Layout {
  SnapshotHeader header;
  std::vector<SectionRecord> table;
};

template <typename T>
std::span<const T> section_span(const MappedFile& map, const SectionRecord& rec) {
  return {reinterpret_cast<const T*>(map.data() + rec.offset),
          static_cast<std::size_t>(rec.count)};
}

Layout validate(const MappedFile& map, const std::filesystem::path& path,
                bool verify_payload_checksums) {
  if (map.size() < sizeof(SnapshotHeader)) {
    fail(path, "truncated header: file holds " + u64s(map.size()) + " bytes, a snapshot needs " +
                   u64s(sizeof(SnapshotHeader)) + " before offset 0 is readable");
  }
  Layout lay;
  std::memcpy(&lay.header, map.data(), sizeof lay.header);
  const SnapshotHeader& h = lay.header;
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(path, "bad magic at offset 0 (not a c3 snapshot)");
  }
  if (h.format_version != kFormatVersion) {
    fail(path, "format version mismatch: file has v" + u64s(h.format_version) +
                   ", this build reads v" + u64s(kFormatVersion));
  }
  if (h.artifact_schema != kArtifactSchema) {
    fail(path, "artifact schema mismatch: file has schema " + u64s(h.artifact_schema) +
                   ", this build produces schema " + u64s(kArtifactSchema) +
                   " — re-run `c3tool prepare`");
  }
  if (h.header_bytes != sizeof(SnapshotHeader)) {
    fail(path, "header size mismatch at offset 16: file says " + u64s(h.header_bytes) +
                   ", expected " + u64s(sizeof(SnapshotHeader)));
  }
  if (h.node_bytes != sizeof(node_t) || h.edge_bytes != sizeof(edge_t)) {
    fail(path, "id-width mismatch: snapshot written with " + u64s(h.node_bytes) + "-byte node / " +
                   u64s(h.edge_bytes) + "-byte edge ids, this build uses " +
                   u64s(sizeof(node_t)) + "/" + u64s(sizeof(edge_t)));
  }
  if (h.file_bytes != map.size()) {
    fail(path, "truncated or padded file: header records " + u64s(h.file_bytes) +
                   " bytes, file holds " + u64s(map.size()));
  }
  const std::uint64_t table_offset = sizeof(SnapshotHeader);
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(h.section_count) * sizeof(SectionRecord);
  if (table_bytes > map.size() - table_offset) {
    fail(path, "section table out of bounds: " + u64s(h.section_count) + " records at offset " +
                   u64s(table_offset) + " exceed the " + u64s(map.size()) + "-byte file");
  }
  lay.table.resize(h.section_count);
  if (h.section_count > 0) {
    std::memcpy(lay.table.data(), map.data() + table_offset, table_bytes);
  }

  SnapshotHeader unsummed = h;
  unsummed.header_checksum = 0;
  std::uint64_t hc = checksum64(&unsummed, sizeof unsummed);
  hc = checksum64(lay.table.data(), table_bytes, hc);
  if (hc != h.header_checksum) {
    fail(path, "header checksum mismatch (expected " + hex64(h.header_checksum) + ", computed " +
                   hex64(hc) + ")");
  }

  std::uint32_t seen = 0;
  for (std::size_t i = 0; i < lay.table.size(); ++i) {
    const SectionRecord& rec = lay.table[i];
    if (rec.kind > static_cast<std::uint32_t>(SectionKind::EdgeOrderCandMembers)) {
      fail(path, "unknown section kind " + u64s(rec.kind) + " at table index " + u64s(i));
    }
    const auto kind = static_cast<SectionKind>(rec.kind);
    const std::string name = section_name(kind);
    if ((seen & (1u << rec.kind)) != 0) fail(path, "duplicate section " + name);
    seen |= 1u << rec.kind;
    if (rec.elem_bytes != expected_elem_bytes(kind)) {
      fail(path, "section " + name + ": element size " + u64s(rec.elem_bytes) + ", expected " +
                     u64s(expected_elem_bytes(kind)));
    }
    if (rec.offset % kSectionAlign != 0) {
      fail(path, "section " + name + ": offset " + u64s(rec.offset) + " is not " +
                     u64s(kSectionAlign) + "-byte aligned");
    }
    if (rec.offset > map.size() ||
        rec.count > (map.size() - rec.offset) / (rec.elem_bytes == 0 ? 1 : rec.elem_bytes)) {
      fail(path, "section " + name + " out of bounds: offset " + u64s(rec.offset) + " + " +
                     u64s(rec.count) + " x " + u64s(rec.elem_bytes) + " bytes exceeds the " +
                     u64s(map.size()) + "-byte file");
    }
  }

  if (verify_payload_checksums) {
    // Bounds are validated above, so the payload scans are safe — and
    // independent, so they run one section per worker. Open cost is
    // mmap + (the largest section / scan bandwidth), not O(file) serial.
    std::vector<std::string> errors(lay.table.size());
    parallel_for_dynamic(
        0, lay.table.size(),
        [&](std::size_t i) {
          const SectionRecord& rec = lay.table[i];
          const std::uint64_t got =
              checksum64(map.data() + rec.offset, rec.count * rec.elem_bytes);
          if (got != rec.checksum) {
            errors[i] = "section " +
                        std::string(section_name(static_cast<SectionKind>(rec.kind))) +
                        " at offset " + u64s(rec.offset) + ": checksum mismatch (recorded " +
                        hex64(rec.checksum) + ", computed " + hex64(got) + ")";
          }
        },
        /*grain=*/1);
    for (const std::string& error : errors) {
      if (!error.empty()) fail(path, error);
    }
  }
  return lay;
}

/// The section of `kind` with its element count checked against what the
/// header's graph shape dictates.
const SectionRecord& require_section(const Layout& lay, const std::filesystem::path& path,
                                     SectionKind kind, std::uint64_t expected_count,
                                     bool allow_empty_when_zero = false) {
  for (const SectionRecord& rec : lay.table) {
    if (rec.kind != static_cast<std::uint32_t>(kind)) continue;
    if (rec.count == expected_count) return rec;
    if (allow_empty_when_zero && rec.count == 0) return rec;
    fail(path, std::string("section ") + section_name(kind) + ": " + u64s(rec.count) +
                   " elements, the header's graph shape dictates " + u64s(expected_count));
  }
  fail(path, std::string("missing section ") + section_name(kind));
}

SnapshotInfo info_from_layout(const Layout& lay, const std::filesystem::path& path) {
  SnapshotInfo info;
  info.format_version = lay.header.format_version;
  info.artifact_schema = lay.header.artifact_schema;
  info.file_bytes = lay.header.file_bytes;
  info.num_nodes = lay.header.num_nodes;
  info.num_edges = lay.header.num_edges;
  info.options = header_options(lay.header, path);
  info.artifact_mask = lay.header.artifact_mask;
  for (const SectionRecord& rec : lay.table) {
    info.sections.push_back({section_name(static_cast<SectionKind>(rec.kind)), rec.offset,
                             rec.count * rec.elem_bytes, rec.count, rec.checksum});
  }
  return info;
}

}  // namespace

CliqueOptions header_options(const SnapshotHeader& h, const std::filesystem::path& context) {
  if (h.algorithm > static_cast<std::uint32_t>(Algorithm::BruteForce) ||
      h.vertex_order > static_cast<std::uint32_t>(VertexOrderKind::ById) ||
      h.edge_order_kind > static_cast<std::uint32_t>(EdgeOrderKind::ApproxCommunityDegeneracy)) {
    fail(context, "corrupt options fingerprint (algorithm " + u64s(h.algorithm) +
                      ", vertex order " + u64s(h.vertex_order) + ", edge order " +
                      u64s(h.edge_order_kind) + ")");
  }
  CliqueOptions opts;
  opts.algorithm = static_cast<Algorithm>(h.algorithm);
  opts.vertex_order = static_cast<VertexOrderKind>(h.vertex_order);
  opts.edge_order = static_cast<EdgeOrderKind>(h.edge_order_kind);
  std::memcpy(&opts.eps, &h.eps_bits, sizeof opts.eps);
  opts.order_seed = h.order_seed;
  opts.distance_pruning = (h.option_flags & kOptionDistancePruning) != 0;
  opts.triangle_growth = (h.option_flags & kOptionTriangleGrowth) != 0;
  return opts;
}

void write_stream(std::ostream& out, const PreparedGraph& engine,
                  const std::filesystem::path& context) {
  // Force the full query surface: the algorithm's dispatch artifacts plus
  // whatever clique_number_upper_bound (spectrum / max-clique) needs, so a
  // loaded engine never prepares anything.
  engine.prepare();
  const Graph& g = engine.graph();
  if (g.num_nodes() > 0 && g.num_edges() > 0) (void)engine.clique_number_upper_bound();
  const CliqueOptions& opts = engine.options();

  SnapshotHeader h;
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.format_version = kFormatVersion;
  h.artifact_schema = kArtifactSchema;
  h.header_bytes = sizeof(SnapshotHeader);
  h.node_bytes = sizeof(node_t);
  h.edge_bytes = sizeof(edge_t);
  h.algorithm = static_cast<std::uint32_t>(opts.algorithm);
  h.vertex_order = static_cast<std::uint32_t>(opts.vertex_order);
  h.edge_order_kind = static_cast<std::uint32_t>(opts.edge_order);
  h.option_flags = (opts.distance_pruning ? kOptionDistancePruning : 0u) |
                   (opts.triangle_growth ? kOptionTriangleGrowth : 0u);
  std::memcpy(&h.eps_bits, &opts.eps, sizeof h.eps_bits);
  h.order_seed = opts.order_seed;
  h.num_nodes = g.num_nodes();
  h.num_edges = g.num_edges();

  std::vector<PendingSection> sections;
  add_section(sections, SectionKind::GraphOffsets, g.raw_offsets());
  add_section(sections, SectionKind::GraphAdjacency, g.raw_adjacency());
  add_section(sections, SectionKind::GraphEdgeIds, g.raw_edge_ids());
  add_section(sections, SectionKind::GraphEndpoints, g.endpoints());

  if (const Digraph* dag = engine.dag_if_built()) {
    h.artifact_mask |= kArtifactDag;
    add_section(sections, SectionKind::DagOutOffsets, dag->raw_out_offsets());
    add_section(sections, SectionKind::DagOutAdjacency, dag->raw_out_adjacency());
    add_section(sections, SectionKind::DagInOffsets, dag->raw_in_offsets());
    add_section(sections, SectionKind::DagInAdjacency, dag->raw_in_adjacency());
    add_section(sections, SectionKind::DagArcSources, dag->raw_arc_sources());
    add_section(sections, SectionKind::DagRankToOriginal, dag->rank_to_original());
  }
  if (const EdgeCommunities* comms = engine.communities_if_built()) {
    h.artifact_mask |= kArtifactCommunities;
    add_section(sections, SectionKind::CommOffsets, comms->raw_offsets());
    add_section(sections, SectionKind::CommMembers, comms->raw_members());
  }
  if (const EdgeOrderResult* eo = engine.edge_order_if_built()) {
    h.artifact_mask |= kArtifactEdgeOrder;
    h.edge_order_sigma = eo->sigma;
    h.edge_order_rounds = eo->rounds;
    add_section(sections, SectionKind::EdgeOrderOrder, eo->order.span());
    add_section(sections, SectionKind::EdgeOrderPos, eo->pos.span());
    add_section(sections, SectionKind::EdgeOrderCandOffsets, eo->candidate_offsets.span());
    add_section(sections, SectionKind::EdgeOrderCandMembers, eo->candidate_members.span());
  }
  if (const std::optional<node_t> s = engine.exact_degeneracy_if_built()) {
    h.artifact_mask |= kArtifactExactDegeneracy;
    h.exact_degeneracy = *s;
  }

  h.section_count = static_cast<std::uint32_t>(sections.size());
  std::uint64_t cursor = align_up(
      sizeof(SnapshotHeader) + sections.size() * sizeof(SectionRecord), kSectionAlign);
  for (PendingSection& s : sections) {
    s.rec.offset = cursor;
    cursor = align_up(cursor + s.rec.count * s.rec.elem_bytes, kSectionAlign);
  }
  h.file_bytes = cursor;

  std::vector<SectionRecord> table;
  table.reserve(sections.size());
  for (const PendingSection& s : sections) table.push_back(s.rec);
  h.header_checksum = 0;
  std::uint64_t hc = checksum64(&h, sizeof h);
  hc = checksum64(table.data(), table.size() * sizeof(SectionRecord), hc);
  h.header_checksum = hc;

  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() * sizeof(SectionRecord)));
  std::uint64_t written = sizeof(SnapshotHeader) + table.size() * sizeof(SectionRecord);
  for (const PendingSection& s : sections) {
    write_padding(out, s.rec.offset - written);
    const std::uint64_t bytes = s.rec.count * s.rec.elem_bytes;
    out.write(reinterpret_cast<const char*>(s.payload), static_cast<std::streamsize>(bytes));
    written = s.rec.offset + bytes;
  }
  write_padding(out, h.file_bytes - written);
  if (!out) fail(context, "write error");
}

void write(const std::filesystem::path& path, const PreparedGraph& engine) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  write_stream(out, engine, path);
  if (!out) fail(path, "write error");
}

SnapshotInfo inspect(const std::filesystem::path& path) {
  const MappedFile map = MappedFile::map_readonly(path);
  const Layout lay = validate(map, path, /*verify_payload_checksums=*/false);
  return info_from_layout(lay, path);
}

// ------------------------------------------------------------------- open

struct Snapshot::Impl {
  MappedFile map;
  SnapshotInfo info;
  Graph graph;                          // views over `map`
  std::optional<PreparedGraph> engine;  // views over `map`, refs `graph`
  bool memory_locked = false;
};

Snapshot::Snapshot() : impl_(std::make_unique<Impl>()) {}
Snapshot::Snapshot(Snapshot&&) noexcept = default;
Snapshot& Snapshot::operator=(Snapshot&&) noexcept = default;
Snapshot::~Snapshot() = default;

const Graph& Snapshot::graph() const noexcept { return impl_->graph; }
const PreparedGraph& Snapshot::engine() const noexcept { return *impl_->engine; }
PreparedGraph& Snapshot::engine() noexcept { return *impl_->engine; }
const SnapshotInfo& Snapshot::info() const noexcept { return impl_->info; }
bool Snapshot::memory_locked() const noexcept { return impl_->memory_locked; }

namespace {

template <typename T>
ArrayStore<T> view_of(const MappedFile& map, const SectionRecord& rec) {
  return ArrayStore<T>::view(section_span<T>(map, rec));
}

/// The artifact-content fingerprint: refuse when any field that determines
/// what the preparation *built* differs from what the caller expects.
void check_fingerprint(const std::filesystem::path& path, const CliqueOptions& stored,
                       const CliqueOptions& expected) {
  if (stored.algorithm != expected.algorithm) {
    fail(path, std::string("fingerprint mismatch: snapshot prepared for algorithm ") +
                   algorithm_name(stored.algorithm) + ", expected " +
                   algorithm_name(expected.algorithm));
  }
  if (stored.vertex_order != expected.vertex_order) {
    fail(path, "fingerprint mismatch: snapshot vertex order kind " +
                   u64s(static_cast<std::uint32_t>(stored.vertex_order)) + ", expected " +
                   u64s(static_cast<std::uint32_t>(expected.vertex_order)));
  }
  if (stored.edge_order != expected.edge_order) {
    fail(path, "fingerprint mismatch: snapshot edge order kind " +
                   u64s(static_cast<std::uint32_t>(stored.edge_order)) + ", expected " +
                   u64s(static_cast<std::uint32_t>(expected.edge_order)));
  }
  std::uint64_t stored_eps = 0, expected_eps = 0;
  std::memcpy(&stored_eps, &stored.eps, sizeof stored_eps);
  std::memcpy(&expected_eps, &expected.eps, sizeof expected_eps);
  if (stored_eps != expected_eps) {
    fail(path, "fingerprint mismatch: snapshot eps " + std::to_string(stored.eps) +
                   ", expected " + std::to_string(expected.eps));
  }
  if (stored.order_seed != expected.order_seed) {
    fail(path, "fingerprint mismatch: snapshot order seed " + u64s(stored.order_seed) +
                   ", expected " + u64s(expected.order_seed));
  }
}

}  // namespace

Snapshot Snapshot::open_mapped(MappedFile map, const std::filesystem::path& path,
                               const CliqueOptions* expected,
                               const SnapshotOpenOptions& open_opts, bool from_buffer) {
  const WallTimer open_timer;
  Snapshot snap;
  Impl& impl = *snap.impl_;
  impl.map = std::move(map);
  // Read-ahead before validation: the checksum scan (when on) is the first
  // beneficiary of the whole file streaming in. A borrowed buffer is warmed
  // (and pinned, below) by whoever owns the enclosing mapping.
  if (!from_buffer && open_opts.prefault) impl.map.prefault();
  const WallTimer validate_timer;
  const Layout lay = validate(impl.map, path, open_opts.verify_checksums);
  if (obs::enabled()) {
    static obs::Histogram& validate_hist =
        obs::Registry::global().histogram("c3_snapshot_validate_seconds");
    validate_hist.observe(validate_timer.seconds());
  }
  // Pin only a validated mapping — garbage should be refused, not locked.
  if (!from_buffer && open_opts.lock_memory) impl.memory_locked = impl.map.lock_memory();
  impl.info = info_from_layout(lay, path);
  const SnapshotHeader& h = lay.header;
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;

  CliqueOptions opts = impl.info.options;
  if (expected != nullptr) {
    check_fingerprint(path, opts, *expected);
    // Runtime-only knobs follow the caller; they change search behavior, not
    // the prepared artifacts.
    opts.distance_pruning = expected->distance_pruning;
    opts.triangle_growth = expected->triangle_growth;
    impl.info.options = opts;
  }

  // Graph sections are mandatory. An empty graph may legitimately have an
  // empty offsets array (a default-constructed Graph round-trips).
  const SectionRecord& g_off =
      require_section(lay, path, SectionKind::GraphOffsets, n + 1, n == 0);
  const SectionRecord& g_adj = require_section(lay, path, SectionKind::GraphAdjacency, 2 * m);
  const SectionRecord& g_ids = require_section(lay, path, SectionKind::GraphEdgeIds, 2 * m);
  const SectionRecord& g_end = require_section(lay, path, SectionKind::GraphEndpoints, m);
  if (g_off.count == n + 1 && n > 0) {
    const auto offsets = section_span<edge_t>(impl.map, g_off);
    if (offsets[n] != 2 * m) {
      fail(path, "graph.offsets: final offset " + u64s(offsets[n]) +
                     " disagrees with the header's 2m = " + u64s(2 * m));
    }
  }
  impl.graph = Graph::from_parts(view_of<edge_t>(impl.map, g_off), view_of<node_t>(impl.map, g_adj),
                                 view_of<edge_t>(impl.map, g_ids), view_of<Edge>(impl.map, g_end));

  PreparedArtifacts arts;
  if ((h.artifact_mask & kArtifactDag) != 0) {
    const SectionRecord& oo = require_section(lay, path, SectionKind::DagOutOffsets, n + 1, n == 0);
    const SectionRecord& oa = require_section(lay, path, SectionKind::DagOutAdjacency, m);
    const SectionRecord& io = require_section(lay, path, SectionKind::DagInOffsets, n + 1, n == 0);
    const SectionRecord& ia = require_section(lay, path, SectionKind::DagInAdjacency, m);
    const SectionRecord& as = require_section(lay, path, SectionKind::DagArcSources, m);
    const SectionRecord& ro = require_section(lay, path, SectionKind::DagRankToOriginal, n);
    arts.dag = Digraph::from_parts(view_of<edge_t>(impl.map, oo), view_of<node_t>(impl.map, oa),
                                   view_of<edge_t>(impl.map, io), view_of<node_t>(impl.map, ia),
                                   view_of<node_t>(impl.map, as), view_of<node_t>(impl.map, ro));
  }
  if ((h.artifact_mask & kArtifactCommunities) != 0) {
    const SectionRecord& co = require_section(lay, path, SectionKind::CommOffsets, m + 1);
    const auto offsets = section_span<edge_t>(impl.map, co);
    const std::uint64_t triangles = m > 0 ? offsets[m] : 0;
    const SectionRecord& cm = require_section(lay, path, SectionKind::CommMembers, triangles);
    arts.communities =
        EdgeCommunities::from_parts(view_of<edge_t>(impl.map, co), view_of<node_t>(impl.map, cm));
  }
  if ((h.artifact_mask & kArtifactEdgeOrder) != 0) {
    const SectionRecord& eo = require_section(lay, path, SectionKind::EdgeOrderOrder, m);
    const SectionRecord& ep = require_section(lay, path, SectionKind::EdgeOrderPos, m);
    const SectionRecord& ec =
        require_section(lay, path, SectionKind::EdgeOrderCandOffsets, m + 1);
    const auto cand_offsets = section_span<edge_t>(impl.map, ec);
    const std::uint64_t cand_total = m > 0 ? cand_offsets[m] : 0;
    const SectionRecord& em =
        require_section(lay, path, SectionKind::EdgeOrderCandMembers, cand_total);
    EdgeOrderResult order;
    order.order = view_of<edge_t>(impl.map, eo);
    order.pos = view_of<edge_t>(impl.map, ep);
    order.candidate_offsets = view_of<edge_t>(impl.map, ec);
    order.candidate_members = view_of<node_t>(impl.map, em);
    order.sigma = h.edge_order_sigma;
    order.rounds = h.edge_order_rounds;
    arts.edge_order = std::move(order);
  }
  if ((h.artifact_mask & kArtifactExactDegeneracy) != 0) {
    arts.exact_degeneracy = h.exact_degeneracy;
  }

  impl.engine.emplace(impl.graph, opts, std::move(arts));
  if (obs::enabled()) {
    static obs::Counter& opens = obs::Registry::global().counter("c3_snapshot_opens_total");
    static obs::Histogram& open_hist =
        obs::Registry::global().histogram("c3_snapshot_open_seconds");
    opens.add();
    open_hist.observe(open_timer.seconds());
  }
  return snap;
}

Snapshot Snapshot::open_with(const std::filesystem::path& path, const CliqueOptions* expected,
                             const SnapshotOpenOptions& open_opts) {
  MappedFile map = open_opts.force_heap_fallback ? MappedFile::read_heap(path)
                                                 : MappedFile::map_readonly(path);
  return open_mapped(std::move(map), path, expected, open_opts, /*from_buffer=*/false);
}

Snapshot Snapshot::open_buffer(std::span<const std::byte> buffer,
                               const std::filesystem::path& label,
                               const SnapshotOpenOptions& opts, const CliqueOptions* expected) {
  return open_mapped(MappedFile::view(buffer.data(), buffer.size()), label, expected, opts,
                     /*from_buffer=*/true);
}

Snapshot Snapshot::open(const std::filesystem::path& path, const SnapshotOpenOptions& opts) {
  return open_with(path, nullptr, opts);
}

Snapshot Snapshot::open(const std::filesystem::path& path, const CliqueOptions& expected,
                        const SnapshotOpenOptions& opts) {
  return open_with(path, &expected, opts);
}

}  // namespace c3::snapshot
