// Template implementation of for_each_triangle (kept out of the main header
// for readability).
#pragma once

#include "parallel/parallel.hpp"

namespace c3 {

template <typename F>
void for_each_triangle(const Digraph& dag, F&& f) {
  // One task per arc (a, b): merge the sorted out-lists of a and b; every
  // common out-neighbor c closes the triangle a < b < c.
  parallel_for_dynamic(0, dag.num_arcs(), [&](std::size_t arc) {
    const node_t a = dag.arc_source(static_cast<edge_t>(arc));
    const node_t b = dag.arc_target(static_cast<edge_t>(arc));
    const auto na = dag.out_neighbors(a);
    const auto nb = dag.out_neighbors(b);
    std::size_t i = 0, j = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i] < nb[j]) {
        ++i;
      } else if (na[i] > nb[j]) {
        ++j;
      } else {
        f(a, b, na[i]);
        ++i;
        ++j;
      }
    }
  });
}

}  // namespace c3
