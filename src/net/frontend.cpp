#include "net/frontend.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "util/bitkernels.hpp"
#include "util/timer.hpp"

namespace c3::net {
namespace {

/// Error payloads and stats suffixes travel on one line: fold any newline
/// into spaces.
std::string one_line(std::string_view text) {
  std::string out(text);
  std::replace(out.begin(), out.end(), '\n', ' ');
  std::replace(out.begin(), out.end(), '\r', ' ');
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t next_instance_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// RAII slot in a graph's admission gate: the constructor blocks until the
/// graph has a free execution slot (under both the per-graph cap and the
/// optional catalog-wide cap), the destructor frees it and hands the
/// capacity to the next waiter. Capacity moves as explicit per-gate grants
/// issued round-robin over the waiting graphs (grant_locked), so wakeup
/// order is a scheduling decision, not a condvar race — a hot graph's
/// waiter horde cannot absorb every freed slot while a light graph starves.
/// The wait is the AdmissionWait stage: its duration lands in the request's
/// trace and the c3_admission_wait_seconds histogram.
class LineFrontEnd::Admission {
 public:
  Admission(LineFrontEnd& fe, const std::string& id, obs::TraceContext* trace) : fe_(fe) {
    const bool telemetry = obs::enabled();
    const std::uint64_t wait_start = trace != nullptr ? trace->now_ns() : 0;
    const WallTimer wait_timer;
    std::unique_lock<std::mutex> lock(fe_.gate_mutex_);
    // std::map nodes are stable and gates are never erased, so the pointer
    // outlives the lock.
    gate_ = &fe_.gates_[id];
    if (gate_->inflight_gauge == nullptr) {
      gate_->inflight_gauge =
          &obs::Registry::global().gauge("c3_graph_inflight", "graph=\"" + id + "\"");
    }
    const int total_cap = fe_.opts_.max_inflight_total;
    const bool fast = fe_.total_waiting_ == 0 && fe_.total_grants_ == 0 &&
                      gate_->inflight < fe_.opts_.max_inflight_per_graph &&
                      (total_cap <= 0 || fe_.total_inflight_ < total_cap);
    if (!fast) {
      // Queue behind the grant scheduler even when this gate has room — an
      // uncontended fast path past *other* gates' waiters would let a busy
      // graph keep leapfrogging the round-robin order on the total cap.
      gate_->waiting += 1;
      fe_.total_waiting_ += 1;
      fe_.grant_locked();
      gate_->free_slot.wait(lock, [&] { return gate_->grants > 0; });
      gate_->grants -= 1;
      fe_.total_grants_ -= 1;
      gate_->waiting -= 1;
      fe_.total_waiting_ -= 1;
    }
    gate_->inflight += 1;
    fe_.total_inflight_ += 1;
    gate_->peak = std::max(gate_->peak, gate_->inflight);
    gate_->inflight_gauge->add();
    if (trace != nullptr) {
      trace->add_span(obs::Stage::AdmissionWait, wait_start, trace->now_ns() - wait_start);
    }
    if (telemetry) fe_.admission_wait_->observe(wait_timer.seconds());
  }

  ~Admission() {
    const std::lock_guard<std::mutex> lock(fe_.gate_mutex_);
    gate_->inflight -= 1;
    fe_.total_inflight_ -= 1;
    gate_->inflight_gauge->sub();
    fe_.grant_locked();  // hand the freed capacity to the next gate in turn
  }

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

 private:
  LineFrontEnd& fe_;
  GraphGate* gate_ = nullptr;
};

void LineFrontEnd::grant_locked() {
  if (gates_.empty() || total_waiting_ == total_grants_) return;
  for (;;) {
    bool granted = false;
    auto it = gates_.lower_bound(rr_cursor_);
    for (std::size_t scanned = 0; scanned < gates_.size(); ++scanned) {
      if (it == gates_.end()) it = gates_.begin();
      GraphGate& gate = it->second;
      ++it;
      const bool has_waiter = gate.waiting > gate.grants;  // ungranted waiters
      const bool per_ok = gate.inflight + gate.grants < opts_.max_inflight_per_graph;
      const bool total_ok = opts_.max_inflight_total <= 0 ||
                            total_inflight_ + total_grants_ < opts_.max_inflight_total;
      if (!total_ok) return;
      if (has_waiter && per_ok) {
        gate.grants += 1;
        total_grants_ += 1;
        gate.free_slot.notify_one();
        // Restart the scan one past the granted gate — strict round-robin.
        rr_cursor_ = it == gates_.end() ? std::string() : it->first;
        granted = true;
        break;
      }
    }
    if (!granted) return;
  }
}

LineFrontEnd::LineFrontEnd(const CliqueService& service, AnswerCache* cache,
                           FrontEndOptions opts)
    : service_(&service), cache_(cache), opts_(opts) {
  opts_.max_inflight_per_graph = std::max(1, opts_.max_inflight_per_graph);
  opts_.max_inflight_total = std::max(0, opts_.max_inflight_total);  // 0 = no total cap
  // Register this instance's serving counters. The instance label keeps
  // concurrent front ends (tests, multiple servers in one process) from
  // polluting each other's stats while every series still lands in one
  // `metrics` exposition.
  instance_label_ = "instance=\"" + std::to_string(next_instance_id()) + "\"";
  obs::Registry& reg = obs::Registry::global();
  requests_ = &reg.counter("c3_requests_total", instance_label_);
  answered_ = &reg.counter("c3_answered_total", instance_label_);
  cache_hits_ = &reg.counter("c3_cache_hits_total", instance_label_);
  errors_ = &reg.counter("c3_errors_total", instance_label_);
  admission_wait_ = &reg.histogram("c3_admission_wait_seconds");
}

void LineFrontEnd::set_stats_suffix_source(std::function<std::string()> source) {
  stats_suffix_ = std::move(source);
}

std::uint64_t LineFrontEnd::fingerprint_for(const std::string& id) {
  {
    const std::shared_lock<std::shared_mutex> lock(fingerprint_mutex_);
    if (const auto it = fingerprints_.find(id); it != fingerprints_.end()) return it->second;
  }
  // May open a snapshot entry on first touch; the service picks the flat or
  // sharded fingerprint to match whichever engine serves the id.
  const std::uint64_t fp = service_->fingerprint(id);
  const std::unique_lock<std::shared_mutex> lock(fingerprint_mutex_);
  return fingerprints_.emplace(id, fp).first->second;
}

std::string LineFrontEnd::stats_line() const {
  const FrontEndStats s = stats();
  std::string line = "stats: requests=" + std::to_string(s.requests) +
                     " answered=" + std::to_string(s.answered) +
                     " errors=" + std::to_string(s.errors) +
                     " peak_inflight=" + std::to_string(s.peak_inflight) +
                     " graphs=" + std::to_string(service_->size());
  line += " cache_hits=" + std::to_string(s.cache.hits) +
          " cache_misses=" + std::to_string(s.cache.misses) +
          " cache_evictions=" + std::to_string(s.cache.evictions) +
          " cache_entries=" + std::to_string(s.cache.entries) +
          " cache_cross_k_hits=" + std::to_string(s.cache.cross_k_hits);
  line += std::string(" kernel=") + bits::kernel_backend_name(bits::active_kernel_backend());
  if (stats_suffix_) {
    // one_line: a multi-line suffix must not corrupt the one-answer-per-line
    // protocol (the suffix source is caller code the front end cannot vet).
    const std::string suffix = one_line(stats_suffix_());
    if (!suffix.empty()) line += ' ' + suffix;
  }
  return line;
}

std::string LineFrontEnd::metrics_text() const {
  obs::Registry& reg = obs::Registry::global();
  // Instantaneous serving-layer state is mirrored into gauges at scrape
  // time — the scrape is the only reader, so sampling here keeps the hot
  // path free of double bookkeeping.
  reg.gauge("c3_catalog_graphs").set(static_cast<std::int64_t>(service_->size()));
  if (cache_ != nullptr) {
    const AnswerCacheStats c = cache_->stats();
    reg.gauge("c3_answer_cache_hits", instance_label_)
        .set(static_cast<std::int64_t>(c.hits));
    reg.gauge("c3_answer_cache_misses", instance_label_)
        .set(static_cast<std::int64_t>(c.misses));
    reg.gauge("c3_answer_cache_evictions", instance_label_)
        .set(static_cast<std::int64_t>(c.evictions));
    reg.gauge("c3_answer_cache_insertions", instance_label_)
        .set(static_cast<std::int64_t>(c.insertions));
    reg.gauge("c3_answer_cache_entries", instance_label_)
        .set(static_cast<std::int64_t>(c.entries));
    reg.gauge("c3_answer_cache_cross_k_hits", instance_label_)
        .set(static_cast<std::int64_t>(c.cross_k_hits));
  }
  {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    int peak = 0;
    for (const auto& [id, gate] : gates_) peak = std::max(peak, gate.peak);
    reg.gauge("c3_peak_inflight", instance_label_).set(peak);
  }
  std::string out = reg.render();
  // The reply line carries the exposition's own newlines; the transport
  // appends the final one after "# EOF".
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

LineFrontEnd::Reply LineFrontEnd::process(std::string_view raw) {
  const std::string_view line = trim(raw);
  if (line.empty() || line.front() == '#') return Reply{std::string(), false, false, {}};

  // Admin commands are bare words, never valid graph ids in a request (a
  // request needs a second token), so they cannot shadow catalog entries.
  if (line == "ping") return Reply{"pong", true, false, {}};
  if (line == "quit" || line == "bye") return Reply{"bye", true, true, {}};
  if (line == "stats") return Reply{stats_line(), true, false, {}};
  if (line == "metrics") return Reply{metrics_text(), true, false, {}};
  if (line == "trace") {
    return Reply{obs::chrome_trace_json(obs::TraceRing::global().snapshot()), true, false, {}};
  }
  if (line == "catalog") {
    std::string out = "catalog:";
    for (const ServiceGraphInfo& info : service_->catalog()) out += ' ' + info.id;
    return Reply{std::move(out), true, false, {}};
  }

  requests_->add();
  std::unique_ptr<obs::TraceContext> trace;
  if (obs::enabled()) {
    trace = std::make_unique<obs::TraceContext>(std::string(), std::string(line));
  }
  const auto fail = [&](std::string message) {
    errors_->add();
    if (trace != nullptr) trace->mark_error();
    Reply reply{"error: " + one_line(message), true, false, {}};
    reply.trace = std::move(trace);
    return reply;
  };

  obs::TraceContext::Scope parse_span(trace.get(), obs::Stage::Parse);
  const std::size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    return fail("expected '<graph-id> <query>', got '" + std::string(line) +
                "' (admin commands: stats metrics trace catalog ping quit)");
  }
  const std::string id(line.substr(0, space));
  const std::string_view query_text = line.substr(space + 1);
  if (trace != nullptr) trace->set_graph(id);

  if (!service_->has_graph(id)) {
    return fail("unknown graph '" + id + "' (see: catalog)");
  }

  Query query;
  try {
    query = parse_query(query_text);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  parse_span.close();

  try {
    std::uint64_t fp = 0;
    {
      // May open a snapshot on first touch — that cost is this request's
      // preparation, distinct from the engine's in-search artifact builds
      // (which run() reports as its own Prepare sub-span).
      obs::TraceContext::Scope prepare_span(trace.get(), obs::Stage::Prepare);
      fp = fingerprint_for(id);
    }
    AnswerCache::Key key;
    if (cache_ != nullptr) {
      key = AnswerCache::make_key(fp, query);
      std::optional<Answer> hit;
      {
        obs::TraceContext::Scope lookup_span(trace.get(), obs::Stage::CacheLookup);
        hit = cache_->lookup(key, query);  // query-aware: may serve cross-k
      }
      if (hit.has_value()) {
        cache_hits_->add();
        answered_->add();
        if (trace != nullptr) trace->mark_cache_hit();
        obs::TraceContext::Scope format_span(trace.get(), obs::Stage::Format);
        Reply reply{format_answer(*hit), true, false, {}};
        format_span.close();
        reply.trace = std::move(trace);
        return reply;
      }
    }
    Answer answer;
    {
      const Admission slot(*this, id, trace.get());  // bounded per-graph execution
      answer = service_->run(id, query, trace.get());
    }
    if (cache_ != nullptr) (void)cache_->insert(key, answer);  // refuses truncated
    answered_->add();
    obs::TraceContext::Scope format_span(trace.get(), obs::Stage::Format);
    Reply reply{format_answer(answer), true, false, {}};
    format_span.close();
    reply.trace = std::move(trace);
    return reply;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

FrontEndStats LineFrontEnd::stats() const {
  FrontEndStats s;
  s.requests = requests_->value();
  s.answered = answered_->value();
  s.cache_hits = cache_hits_->value();
  s.errors = errors_->value();
  {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    for (const auto& [id, gate] : gates_) s.peak_inflight = std::max(s.peak_inflight, gate.peak);
  }
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

}  // namespace c3::net
