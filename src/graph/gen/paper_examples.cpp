#include "graph/gen/paper_examples.hpp"

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

/// K6 minus the given forbidden pairs (0-based ids).
Graph k6_minus(const EdgeList& forbidden) {
  EdgeList edges;
  for (node_t u = 0; u < 6; ++u) {
    for (node_t v = u + 1; v < 6; ++v) {
      bool skip = false;
      for (const Edge& f : forbidden) {
        if ((f.u == u && f.v == v) || (f.u == v && f.v == u)) skip = true;
      }
      if (!skip) edges.push_back(Edge{u, v});
    }
  }
  return build_graph(edges, 6);
}

}  // namespace

Graph figure1_graph() { return complete_graph(6); }

Graph figure2_graph() { return k6_minus({Edge{2, 3}}); }

Graph figure4_graph() { return k6_minus({Edge{2, 3}, Edge{1, 5}}); }

}  // namespace c3
