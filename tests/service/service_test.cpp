// CliqueService: a catalog of named graphs (in-memory + snapshot-backed,
// lazily opened) routing typed queries by graph id — including the PR's
// acceptance scenario: interleaved streaming queries from 8 threads across
// two graphs, with per-query worker caps respected and the global worker
// count untouched, clean under ThreadSanitizer.
#include "clique/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "clique/batch.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "snapshot/snapshot.hpp"

namespace c3 {
namespace {

std::filesystem::path temp_snapshot_path(const char* tag) {
  static std::atomic<int> counter{0};
  return std::filesystem::temp_directory_path() /
         ("c3_service_test_" + std::string(tag) + "_" +
          std::to_string(counter.fetch_add(1)) + "_" + std::to_string(::getpid()) + ".c3snap");
}

/// Writes a prepared snapshot of `g` and returns its path (caller removes).
std::filesystem::path write_snapshot(const Graph& g, const CliqueOptions& opts, const char* tag) {
  const std::filesystem::path path = temp_snapshot_path(tag);
  const PreparedGraph engine(g, opts);
  snapshot::write(path, engine);
  return path;
}

Query make(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

TEST(CliqueService, RoutesQueriesByGraphId) {
  const Graph a = social_like(200, 1500, 0.4, 3);
  const Graph b = erdos_renyi(150, 900, 7);
  const count_t a4 = PreparedGraph(a, {}).count(4).count;
  const count_t b4 = PreparedGraph(b, {}).count(4).count;

  CliqueService service;
  service.add_graph("social", Graph(a));
  service.add_graph("er", Graph(b));
  ASSERT_EQ(service.size(), 2u);
  EXPECT_TRUE(service.has_graph("social"));
  EXPECT_FALSE(service.has_graph("nope"));

  EXPECT_EQ(service.run("social", make(QueryKind::Count, 4)).count, a4);
  EXPECT_EQ(service.run("er", make(QueryKind::Count, 4)).count, b4);
  EXPECT_THROW((void)service.run("nope", make(QueryKind::Count, 3)), std::invalid_argument);
  EXPECT_THROW(service.add_graph("social", Graph(b)), std::invalid_argument);
}

TEST(CliqueService, SnapshotEntriesOpenLazilyAndOnce) {
  const Graph g = social_like(200, 1600, 0.4, 13);
  const std::filesystem::path path = write_snapshot(g, {}, "lazy");
  const count_t expected = PreparedGraph(g, {}).count(4).count;

  CliqueService service;
  service.add_snapshot("snap", path);
  // Registration touches nothing: the catalog row shows an unopened entry.
  ASSERT_EQ(service.catalog().size(), 1u);
  EXPECT_TRUE(service.catalog()[0].from_snapshot);
  EXPECT_FALSE(service.catalog()[0].opened);

  // Racing first uses open the snapshot exactly once (the engine underneath
  // asserts artifacts are installed, not rebuilt).
  std::vector<std::thread> threads;
  std::vector<count_t> counts(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { counts[t] = service.run("snap", make(QueryKind::Count, 4)).count; });
  }
  for (std::thread& th : threads) th.join();
  for (const count_t c : counts) EXPECT_EQ(c, expected);

  EXPECT_TRUE(service.catalog()[0].opened);
  EXPECT_EQ(service.catalog()[0].num_nodes, g.num_nodes());
  // A snapshot-loaded engine never rebuilds: prepare_seconds stays zero.
  EXPECT_EQ(service.engine("snap").prepare_seconds(), 0.0);

  std::filesystem::remove(path);
}

TEST(CliqueService, MissingSnapshotFailsOnFirstUseAndStays) {
  CliqueService service;
  service.add_snapshot("ghost", "/nonexistent/ghost.c3snap");
  EXPECT_THROW((void)service.run("ghost", make(QueryKind::Count, 3)), std::runtime_error);
  // The failed open is sticky — no half-open entry on retry.
  EXPECT_THROW((void)service.run("ghost", make(QueryKind::Count, 3)), std::runtime_error);
  EXPECT_FALSE(service.catalog()[0].opened);
}

TEST(CliqueService, SnapshotWarmupHintsServeIdentically) {
  const Graph g = erdos_renyi(150, 1100, 19);
  const std::filesystem::path path = write_snapshot(g, {}, "warm");
  const count_t expected = PreparedGraph(g, {}).count(4).count;

  snapshot::SnapshotOpenOptions open;
  open.prefault = true;
  open.lock_memory = true;  // best-effort: allowed to degrade, never to fail
  CliqueService service;
  service.add_snapshot("warm", path, open);
  EXPECT_EQ(service.run("warm", make(QueryKind::Count, 4)).count, expected);

  std::filesystem::remove(path);
}

// The acceptance scenario: one in-memory graph and one snapshot-backed graph
// behind one service, 8 threads interleaving streaming queries across both,
// per-query worker caps respected, global worker count untouched.
TEST(CliqueService, InterleavedStreamingQueriesAcrossTwoGraphs) {
  const Graph mem = social_like(220, 1700, 0.45, 29);
  const Graph disk = erdos_renyi(180, 1300, 31);
  const std::filesystem::path path = write_snapshot(disk, {}, "stream");

  CliqueService service;
  service.add_graph("mem", Graph(mem));
  service.add_snapshot("disk", path);
  service.prepare("mem");
  service.prepare("disk");

  // Ground truth per graph.
  const count_t mem3 = PreparedGraph(mem, {}).count(3).count;
  const count_t mem4 = PreparedGraph(mem, {}).count(4).count;
  const count_t disk3 = PreparedGraph(disk, {}).count(3).count;
  const count_t disk4 = PreparedGraph(disk, {}).count(4).count;

  const int global_before = num_workers();
  QueryStream mem_stream(service.engine("mem"), /*executors=*/2);
  QueryStream disk_stream(service.engine("disk"), /*executors=*/2);

  // 8 threads interleave submissions across both graphs with varying
  // per-query caps, polling as they go; every answer — polled or drained —
  // is verified against the per-graph ground truth via its echoed k.
  std::atomic<int> mismatches{0};
  std::atomic<int> verified{0};
  const auto check = [&](bool is_mem, const Answer& answer) {
    const count_t expected =
        is_mem ? (answer.k == 3 ? mem3 : mem4) : (answer.k == 3 ? disk3 : disk4);
    if (answer.count != expected) mismatches.fetch_add(1);
    verified.fetch_add(1);
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        const int k = 3 + ((t + rep) % 2);
        Query q = make(QueryKind::Count, k);
        q.opts.max_workers = 1 + (t % 3);
        const bool to_mem = t % 2 == 0;
        QueryStream& stream = to_mem ? mem_stream : disk_stream;
        (void)stream.submit(q);
        // Poll concurrently with other clients' submissions; a hit delivers
        // some completed answer (not necessarily ours).
        if (auto done = stream.poll()) check(to_mem, done->second);
      }
    });
  }
  for (std::thread& th : clients) th.join();

  for (auto& [ticket, answer] : mem_stream.drain()) {
    (void)ticket;
    check(true, answer);
  }
  for (auto& [ticket, answer] : disk_stream.drain()) {
    (void)ticket;
    check(false, answer);
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(verified.load(), 24) << "every submitted query must be answered exactly once";
  EXPECT_EQ(num_workers(), global_before) << "streaming must not write the global cap";

  std::filesystem::remove(path);
}

TEST(CliqueService, ConcurrentMixedQueriesAcrossTwoGraphs) {
  // Direct run() from many threads, mixed kinds, both graphs — the
  // service-level reentrancy test (runs under TSan via the service label).
  const Graph a = social_like(200, 1500, 0.5, 41);
  const Graph b = erdos_renyi(160, 1000, 43);
  CliqueService service;
  service.add_graph("a", Graph(a));
  service.add_graph("b", Graph(b));

  const count_t a3 = PreparedGraph(a, {}).count(3).count;
  const node_t b_omega = PreparedGraph(b, {}).max_clique_size();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 2; ++rep) {
        if (t % 4 == 0) {
          if (service.run("a", make(QueryKind::Count, 3)).count != a3) failures.fetch_add(1);
        } else if (t % 4 == 1) {
          Query q = make(QueryKind::MaxClique);
          q.opts.want_witness = false;
          if (service.run("b", q).omega != b_omega) failures.fetch_add(1);
        } else if (t % 4 == 2) {
          Query q = make(QueryKind::List, 3);
          q.opts.result_limit = 5;
          const Answer ans = service.run("a", q);
          if (ans.cliques.size() > 5) failures.fetch_add(1);
        } else {
          if (!service.run("b", make(QueryKind::HasClique, 2)).found) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace c3
