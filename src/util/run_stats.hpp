// Streaming statistics over repeated measurements.
//
// The paper reports arithmetic averages over >= 10 repetitions and discusses
// the empirical standard deviation of runtimes (Appendix B.2); this
// accumulator provides exactly those summary statistics for the bench
// harness, using Welford's numerically stable online update.
//
// Percentiles: RunStats deliberately does NOT grow a percentile() method.
// Welford's update is O(1) memory precisely because it forgets the samples,
// and any exact quantile needs them all back; sketch estimators (P², GK)
// trade that for data-dependent error bounds that are hard to reason about
// in a latency SLO. The system's quantiles therefore live in the telemetry
// histograms (obs/metrics.hpp): fixed log-scale buckets hold p50/p95/p99
// with a *fixed* relative error (the bucket ratio, ~19% at 4 buckets per
// octave), bounded memory, and lock-free merges. The bucket-walking
// interpolation itself is shared here — quantile_from_log_buckets below —
// so the math sits next to the accumulator it complements and is tested
// with it (tests/util/misc_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace c3 {

/// Quantile extraction over histogram bucket counts. `counts[i]` holds the
/// number of observations v with lower(i) < v <= upper(i), where
/// upper = `upper_bound(i)` and lower(i) = upper(i-1) (lower(0) = 0).
/// Returns the value at quantile `q` (clamped to [0,1]) by rank-walking the
/// cumulative counts and interpolating linearly inside the hit bucket; 0
/// when every bucket is empty. The error is bounded by the bucket width at
/// the hit rank.
template <typename UpperBound>
[[nodiscard]] double quantile_from_log_buckets(const std::uint64_t* counts, std::size_t n,
                                               double q, UpperBound&& upper_bound) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += counts[i];
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the requested quantile; q=0 -> first, q=1 -> last.
  const auto rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      const double hi = upper_bound(i);
      const double lo = i == 0 ? 0.0 : upper_bound(i - 1);
      const double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(counts[i]);
      return lo + fraction * (hi - lo);
    }
    cumulative += counts[i];
  }
  return upper_bound(n - 1);  // unreachable when counts sum to total
}

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Relative standard deviation (stddev / mean), as the paper quotes
  /// ("standard deviation of the runtimes is less than 5.2%").
  [[nodiscard]] double rel_stddev() const noexcept {
    return mean_ != 0.0 ? stddev() / mean_ : 0.0;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace c3
