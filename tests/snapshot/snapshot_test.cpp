// Snapshot subsystem tests: byte-identical query results between a cold
// engine and a snapshot-loaded one for every algorithm, the never-rebuild
// guarantee, refusal of corrupt/truncated/mismatched files with precise
// errors, and concurrent queries over a loaded engine (the tsan surface).
#include "snapshot/snapshot.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "snapshot/format.hpp"
#include "snapshot/mapped_file.hpp"

namespace c3 {
namespace {

const Algorithm kAllAlgorithms[] = {Algorithm::C3List,   Algorithm::C3ListCD,
                                    Algorithm::Hybrid,   Algorithm::KCList,
                                    Algorithm::ArbCount, Algorithm::BruteForce};

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: ctest runs each TEST_F as its own process, in
    // parallel — a shared path would let one test's TearDown delete files
    // another test is still writing.
    dir_ = std::filesystem::temp_directory_path() /
           ("c3list_snapshot_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Flips one byte of the file at `offset`.
  void corrupt_byte(const std::filesystem::path& path, std::uint64_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  /// The error message open() throws for `path`, or "" if it doesn't throw.
  std::string open_error(const std::filesystem::path& path) {
    try {
      (void)snapshot::Snapshot::open(path);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotTest, RoundTripIdenticalResultsAllAlgorithms) {
  const Graph g = social_like(200, 1600, 0.4, 21);
  for (const Algorithm alg : kAllAlgorithms) {
    SCOPED_TRACE(algorithm_name(alg));
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph cold(g, opts);
    const auto path = dir_ / "roundtrip.c3snap";
    snapshot::write(path, cold);
    const auto snap = snapshot::Snapshot::open(path);
    const PreparedGraph& loaded = snap.engine();

    EXPECT_EQ(loaded.prepare_seconds(), 0.0);
    const int installed = loaded.artifacts_built();

    for (int k = 3; k <= 6; ++k) {
      const CliqueResult a = cold.count(k);
      const CliqueResult b = loaded.count(k);
      EXPECT_EQ(a.count, b.count) << "k=" << k;
      EXPECT_EQ(b.stats.preprocess_seconds, 0.0) << "k=" << k;
    }
    const CliqueSpectrum sa = cold.spectrum();
    const CliqueSpectrum sb = loaded.spectrum();
    EXPECT_EQ(sa.omega, sb.omega);
    ASSERT_EQ(sa.counts.size(), sb.counts.size());
    for (std::size_t i = 0; i < sa.counts.size(); ++i) EXPECT_EQ(sa.counts[i], sb.counts[i]);
    EXPECT_EQ(sb.preprocess_seconds, 0.0);

    EXPECT_EQ(cold.per_vertex_counts(4), loaded.per_vertex_counts(4));
    EXPECT_EQ(cold.per_edge_counts(4), loaded.per_edge_counts(4));
    EXPECT_EQ(cold.max_clique_size(), loaded.max_clique_size());
    EXPECT_EQ(cold.find_clique(3).has_value(), loaded.find_clique(3).has_value());

    // Nothing above was allowed to build anything.
    EXPECT_EQ(loaded.artifacts_built(), installed);
    EXPECT_EQ(loaded.prepare_seconds(), 0.0);
  }
}

TEST_F(SnapshotTest, WriteForcesTheFullQuerySurface) {
  // Even for BruteForce (whose prepare() builds nothing), the snapshot must
  // carry the upper-bound artifact so max-clique queries never prepare.
  const Graph g = erdos_renyi(60, 450, 5);
  CliqueOptions opts;
  opts.algorithm = Algorithm::BruteForce;
  const PreparedGraph cold(g, opts);
  const auto path = dir_ / "brute.c3snap";
  snapshot::write(path, cold);
  const auto info = snapshot::inspect(path);
  EXPECT_TRUE(info.has(snapshot::kArtifactExactDegeneracy));

  const auto snap = snapshot::Snapshot::open(path);
  EXPECT_EQ(snap.engine().max_clique_size(), cold.max_clique_size());
  EXPECT_EQ(snap.engine().prepare_seconds(), 0.0);
}

TEST_F(SnapshotTest, InspectDescribesTheFile) {
  const Graph g = social_like(150, 1100, 0.45, 77);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);
  const auto path = dir_ / "inspect.c3snap";
  snapshot::write(path, engine);

  const snapshot::SnapshotInfo info = snapshot::inspect(path);
  EXPECT_EQ(info.format_version, snapshot::kFormatVersion);
  EXPECT_EQ(info.num_nodes, g.num_nodes());
  EXPECT_EQ(info.num_edges, g.num_edges());
  EXPECT_EQ(info.options.algorithm, Algorithm::C3List);
  EXPECT_TRUE(info.has(snapshot::kArtifactDag));
  EXPECT_TRUE(info.has(snapshot::kArtifactCommunities));
  EXPECT_FALSE(info.has(snapshot::kArtifactEdgeOrder));
  // Graph CSR (4 sections) + DAG (6) + communities (2).
  EXPECT_EQ(info.sections.size(), 12u);
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
}

TEST_F(SnapshotTest, EmptyAndTinyGraphsRoundTrip) {
  const Graph empty = build_graph(EdgeList{}, 0);
  const Graph tiny = build_graph(EdgeList{{0, 1}, {1, 2}, {0, 2}}, 3);
  for (const Graph* g : {&empty, &tiny}) {
    for (const Algorithm alg : kAllAlgorithms) {
      SCOPED_TRACE(algorithm_name(alg));
      CliqueOptions opts;
      opts.algorithm = alg;
      const PreparedGraph cold(*g, opts);
      const auto path = dir_ / "tiny.c3snap";
      snapshot::write(path, cold);
      const auto snap = snapshot::Snapshot::open(path);
      EXPECT_EQ(snap.graph().num_nodes(), g->num_nodes());
      EXPECT_EQ(snap.engine().count(3).count, cold.count(3).count);
      EXPECT_EQ(snap.engine().max_clique_size(), cold.max_clique_size());
    }
  }
}

TEST_F(SnapshotTest, RejectsGarbageAndTruncatedHeader) {
  const auto garbage = dir_ / "garbage.c3snap";
  std::ofstream(garbage, std::ios::binary) << std::string(4096, 'x');
  EXPECT_NE(open_error(garbage).find("bad magic"), std::string::npos);

  const auto shorty = dir_ / "short.c3snap";
  std::ofstream(shorty, std::ios::binary) << "c3snap";
  EXPECT_NE(open_error(shorty).find("truncated header"), std::string::npos);
}

TEST_F(SnapshotTest, RejectsForeignVersionAndTruncationAndTamper) {
  const Graph g = erdos_renyi(80, 600, 3);
  const PreparedGraph engine(g, {});
  const auto path = dir_ / "valid.c3snap";
  snapshot::write(path, engine);
  ASSERT_EQ(open_error(path), "");  // sanity: the pristine file loads

  // Version: bytes [8, 12) of the header (checked before the checksum, so
  // the message names the version).
  auto tampered = dir_ / "version.c3snap";
  std::filesystem::copy_file(path, tampered);
  corrupt_byte(tampered, 8);
  EXPECT_NE(open_error(tampered).find("format version mismatch"), std::string::npos);

  // Truncation: the header's file_bytes no longer matches.
  tampered = dir_ / "truncated.c3snap";
  std::filesystem::copy_file(path, tampered);
  std::filesystem::resize_file(tampered, std::filesystem::file_size(tampered) - 17);
  EXPECT_NE(open_error(tampered).find("truncated"), std::string::npos);

  // Tampering with the section table breaks the header checksum.
  tampered = dir_ / "table.c3snap";
  std::filesystem::copy_file(path, tampered);
  corrupt_byte(tampered, sizeof(snapshot::SnapshotHeader) + 8);  // first record's offset field
  EXPECT_NE(open_error(tampered).find("header checksum mismatch"), std::string::npos);
}

TEST_F(SnapshotTest, RejectsCorruptSectionPayloadNamingTheSection) {
  const Graph g = erdos_renyi(80, 600, 3);
  const PreparedGraph engine(g, {});
  const auto path = dir_ / "payload.c3snap";
  snapshot::write(path, engine);

  const snapshot::SnapshotInfo info = snapshot::inspect(path);
  const snapshot::SectionInfo& target = info.sections.back();
  corrupt_byte(path, target.offset + target.bytes / 2);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find(target.name), std::string::npos) << error;

  // The same file loads with verification off (the trusted-store fast path) —
  // the corruption is in a payload, not the header.
  snapshot::SnapshotOpenOptions trusting;
  trusting.verify_checksums = false;
  EXPECT_NO_THROW((void)snapshot::Snapshot::open(path, trusting));
}

TEST_F(SnapshotTest, RefusesFingerprintMismatchAndAppliesRuntimeFlags) {
  const Graph g = erdos_renyi(70, 520, 13);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph engine(g, opts);
  const auto path = dir_ / "fingerprint.c3snap";
  snapshot::write(path, engine);

  CliqueOptions wrong = opts;
  wrong.algorithm = Algorithm::KCList;
  EXPECT_THROW((void)snapshot::Snapshot::open(path, wrong), std::runtime_error);
  wrong = opts;
  wrong.order_seed = 999;
  EXPECT_THROW((void)snapshot::Snapshot::open(path, wrong), std::runtime_error);
  wrong = opts;
  wrong.eps = 0.25;
  EXPECT_THROW((void)snapshot::Snapshot::open(path, wrong), std::runtime_error);

  // Runtime-only knobs are not part of the fingerprint; they apply on top.
  CliqueOptions runtime = opts;
  runtime.distance_pruning = false;
  const auto snap = snapshot::Snapshot::open(path, runtime);
  EXPECT_FALSE(snap.engine().options().distance_pruning);
  EXPECT_EQ(snap.engine().count(4).count, engine.count(4).count);
}

TEST_F(SnapshotTest, ReadGraphAnyDetachesTheGraph) {
  const Graph g = erdos_renyi(90, 500, 33);
  const PreparedGraph engine(g, {});
  const auto path = dir_ / "any.c3snap";
  snapshot::write(path, engine);

  // The snapshot (and its mapping) dies inside read_graph_any; the returned
  // graph must own its memory.
  const Graph h = read_graph_any(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (node_t v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(std::vector<node_t>(a.begin(), a.end()), std::vector<node_t>(b.begin(), b.end()));
  }
}

TEST_F(SnapshotTest, ConcurrentQueriesOnLoadedEngine) {
  const Graph g = social_like(300, 2400, 0.4, 7);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph cold(g, opts);
  const auto path = dir_ / "concurrent.c3snap";
  snapshot::write(path, cold);
  const auto snap = snapshot::Snapshot::open(path);
  const PreparedGraph& loaded = snap.engine();

  count_t expected[4];
  for (int k = 3; k <= 6; ++k) expected[k - 3] = cold.count(k).count;
  const node_t omega = cold.max_clique_size();
  const int installed = loaded.artifacts_built();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        const int k = 3 + (t + rep) % 4;
        const CliqueResult r = loaded.count(k);
        if (r.count != expected[k - 3]) failures[t] = "count mismatch";
        if (r.stats.preprocess_seconds != 0.0) failures[t] = "nonzero preprocess";
        if (t % 2 == 0 && loaded.max_clique_size() != omega) failures[t] = "omega mismatch";
        if (!loaded.has_clique(3)) failures[t] = "missing 3-clique";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_EQ(loaded.artifacts_built(), installed);
  EXPECT_EQ(loaded.prepare_seconds(), 0.0);
}

TEST_F(SnapshotTest, HeapFallbackReadsIdenticalBytesAndReportsNoMapping) {
  // MappedFile::read_heap is the path platforms without mmap always take;
  // force it directly and check the contract: same bytes, is_mapped() false,
  // and the page-granular warm-up hints are explicit no-ops (prefault does
  // nothing, lock_memory reports false instead of mlock-ing a heap pointer).
  const auto path = dir_ / "heap.bin";
  std::string payload(70'000, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131) ^ (i >> 7));
  }
  std::ofstream(path, std::ios::binary) << payload;

  const snapshot::MappedFile mapped = snapshot::MappedFile::map_readonly(path);
  const snapshot::MappedFile heap = snapshot::MappedFile::read_heap(path);
  EXPECT_FALSE(heap.is_mapped());
  ASSERT_EQ(heap.size(), payload.size());
  ASSERT_EQ(heap.size(), mapped.size());
  EXPECT_EQ(std::memcmp(heap.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(std::memcmp(heap.data(), mapped.data(), mapped.size()), 0);

  heap.prefault();  // must be a harmless no-op
  EXPECT_FALSE(heap.lock_memory());

  // Empty files are fine too (data may be null, size 0, hints still safe).
  const auto empty = dir_ / "empty.bin";
  std::ofstream(empty, std::ios::binary).flush();
  const snapshot::MappedFile none = snapshot::MappedFile::read_heap(empty);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_FALSE(none.is_mapped());
  none.prefault();
  EXPECT_FALSE(none.lock_memory());
}

TEST_F(SnapshotTest, ForcedHeapFallbackServesIdenticalAnswers) {
  // A snapshot opened through the heap fallback must behave exactly like the
  // mmap path — except memory_locked(), which must report false even when
  // lock_memory was requested (the old code fell through to mlock on a heap
  // pointer, whose success/failure was meaningless).
  const Graph g = social_like(150, 1200, 0.4, 17);
  const PreparedGraph cold(g, {});
  const auto path = dir_ / "heap.c3snap";
  snapshot::write(path, cold);

  snapshot::SnapshotOpenOptions open;
  open.force_heap_fallback = true;
  open.prefault = true;      // no-op on the heap path, must not throw
  open.lock_memory = true;   // must be reported as not locked
  const auto snap = snapshot::Snapshot::open(path, open);
  EXPECT_FALSE(snap.memory_locked());
  EXPECT_EQ(snap.engine().count(4).count, cold.count(4).count);
  EXPECT_EQ(snap.engine().max_clique_size(), cold.max_clique_size());
  EXPECT_EQ(snap.engine().prepare_seconds(), 0.0);

  // Checksums still verify (and still catch corruption) on the heap path.
  auto tampered = dir_ / "heap_tampered.c3snap";
  std::filesystem::copy_file(path, tampered);
  const snapshot::SnapshotInfo info = snapshot::inspect(tampered);
  const snapshot::SectionInfo& target = info.sections.back();
  corrupt_byte(tampered, target.offset + target.bytes / 2);
  snapshot::SnapshotOpenOptions strict;
  strict.force_heap_fallback = true;
  EXPECT_THROW((void)snapshot::Snapshot::open(tampered, strict), std::runtime_error);
}

TEST_F(SnapshotTest, WarmupHintsAreBestEffortAndChangeNoAnswer) {
  const Graph g = social_like(150, 1200, 0.4, 17);
  const PreparedGraph cold(g, {});
  const auto path = dir_ / "warmup.c3snap";
  snapshot::write(path, cold);

  snapshot::SnapshotOpenOptions open;
  open.prefault = true;
  open.lock_memory = true;
  const auto snap = snapshot::Snapshot::open(path, open);
  // mlock is best-effort (RLIMIT_MEMLOCK may refuse); the accessor reports
  // the outcome, and either way the engine serves identical answers.
  (void)snap.memory_locked();
  EXPECT_EQ(snap.engine().count(4).count, cold.count(4).count);
  EXPECT_EQ(snap.engine().prepare_seconds(), 0.0);

  // Hints off: memory_locked() must report false.
  const auto plain = snapshot::Snapshot::open(path);
  EXPECT_FALSE(plain.memory_locked());
  EXPECT_EQ(plain.engine().count(4).count, cold.count(4).count);
}

}  // namespace
}  // namespace c3
