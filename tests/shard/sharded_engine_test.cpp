// ShardedEngine tests: the headline guarantee is bit-identical answers for
// the four counting kinds (count, vertexcounts, edgecounts, spectrum)
// between a sharded engine and one unsharded PreparedGraph over the whole
// graph — for every algorithm, both partition policies, and several shard
// counts. Plus the composed kinds (has/find/max/list), degenerate shapes,
// cancellation, and the fingerprint's sensitivity to the partition.
#include "shard/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clique/api.hpp"
#include "clique/engine.hpp"
#include "clique/query.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace c3 {
namespace {

using shard::PartitionPolicy;
using shard::ShardedEngine;
using shard::ShardingOptions;

const Algorithm kAllAlgorithms[] = {Algorithm::C3List,   Algorithm::C3ListCD,
                                    Algorithm::Hybrid,   Algorithm::KCList,
                                    Algorithm::ArbCount, Algorithm::BruteForce};
const PartitionPolicy kPolicies[] = {PartitionPolicy::VertexRange, PartitionPolicy::EdgeBlock};

Query make_query(QueryKind kind, int k = 0, int kmax = 0) {
  Query q;
  q.kind = kind;
  q.k = k;
  q.kmax = kmax;
  return q;
}

/// The four counting kinds must be *equal*, not approximately so.
void expect_counting_parity(const PreparedGraph& flat, const ShardedEngine& sharded) {
  for (int k = 1; k <= 6; ++k) {
    const Query q = make_query(QueryKind::Count, k);
    EXPECT_EQ(sharded.run(q).count, flat.run(q).count) << "count k=" << k;
  }
  for (const int k : {2, 3, 4}) {
    const Query pv = make_query(QueryKind::PerVertexCounts, k);
    EXPECT_EQ(sharded.run(pv).per_counts, flat.run(pv).per_counts) << "vertexcounts k=" << k;
    const Query pe = make_query(QueryKind::PerEdgeCounts, k);
    EXPECT_EQ(sharded.run(pe).per_counts, flat.run(pe).per_counts) << "edgecounts k=" << k;
  }
  for (const int kmax : {0, 4}) {
    const Query q = make_query(QueryKind::Spectrum, 0, kmax);
    const Answer a = flat.run(q);
    const Answer b = sharded.run(q);
    EXPECT_EQ(b.spectrum.counts, a.spectrum.counts) << "spectrum kmax=" << kmax;
    EXPECT_EQ(b.spectrum.omega, a.spectrum.omega) << "spectrum kmax=" << kmax;
    EXPECT_EQ(b.omega, a.omega) << "spectrum kmax=" << kmax;
    EXPECT_EQ(b.count, a.count) << "spectrum kmax=" << kmax;
  }
}

TEST(ShardedEngineTest, CountingParityAllAlgorithmsPoliciesAndShardCounts) {
  const Graph g = social_like(150, 1100, 0.45, 21);
  for (const Algorithm alg : kAllAlgorithms) {
    CliqueOptions opts;
    opts.algorithm = alg;
    const PreparedGraph flat(g, opts);
    for (const PartitionPolicy policy : kPolicies) {
      for (const int shards : {1, 2, 3}) {
        SCOPED_TRACE(std::string(algorithm_name(alg)) + " " + partition_policy_name(policy) +
                     " shards=" + std::to_string(shards));
        ShardingOptions sharding;
        sharding.shards = shards;
        sharding.policy = policy;
        const ShardedEngine sharded(g, sharding, opts);
        EXPECT_EQ(sharded.num_shards(), static_cast<std::size_t>(shards));
        EXPECT_EQ(sharded.num_nodes(), g.num_nodes());
        EXPECT_EQ(sharded.num_edges(), g.num_edges());
        expect_counting_parity(flat, sharded);
      }
    }
  }
}

TEST(ShardedEngineTest, ParityOnClusteredGraphWithWorkerCap) {
  // A second smoke shape (dense modules straddling shard boundaries), with
  // the per-query worker cap engaged so the cap-splitting path is the one
  // being verified.
  const Graph g = bio_like(120, 900, 12, 14, 0.75, 5);
  CliqueOptions opts;
  opts.algorithm = Algorithm::Hybrid;
  const PreparedGraph flat(g, opts);
  ShardingOptions sharding;
  sharding.shards = 4;
  const ShardedEngine sharded(g, sharding, opts);
  for (const int workers : {1, 2}) {
    for (int k = 3; k <= 5; ++k) {
      Query q = make_query(QueryKind::Count, k);
      q.opts.max_workers = workers;
      EXPECT_EQ(sharded.run(q).count, flat.run(q).count)
          << "k=" << k << " workers=" << workers;
    }
  }
}

TEST(ShardedEngineTest, DegenerateGraphsAndShardCounts) {
  const Graph empty = build_graph(EdgeList{}, 0);
  const Graph isolated = build_graph(EdgeList{}, 4);
  const Graph triangle = build_graph(EdgeList{{0, 1}, {1, 2}, {0, 2}}, 3);
  for (const Graph* g : {&empty, &isolated, &triangle}) {
    const PreparedGraph flat(*g, {});
    // More shards than vertices: the partitioner emits empty ranges, which
    // must merge as zero contributions, not crash.
    for (const int shards : {1, 2, 8}) {
      SCOPED_TRACE("n=" + std::to_string(g->num_nodes()) + " shards=" + std::to_string(shards));
      ShardingOptions sharding;
      sharding.shards = shards;
      const ShardedEngine sharded(*g, sharding, {});
      expect_counting_parity(flat, sharded);
      const Query mq = make_query(QueryKind::MaxClique);
      EXPECT_EQ(sharded.run(mq).omega, flat.run(mq).omega);
    }
  }
}

TEST(ShardedEngineTest, ComposedKindsAgreeWithFlatEngine) {
  const Graph g = social_like(100, 800, 0.5, 33);
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  const PreparedGraph flat(g, opts);
  ShardingOptions sharding;
  sharding.shards = 3;
  const ShardedEngine sharded(g, sharding, opts);

  const node_t omega = flat.run(make_query(QueryKind::MaxClique)).omega;
  for (int k = 2; k <= static_cast<int>(omega) + 1; ++k) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const Answer has = sharded.run(make_query(QueryKind::HasClique, k));
    EXPECT_EQ(has.found, flat.run(make_query(QueryKind::HasClique, k)).found);

    const Answer found = sharded.run(make_query(QueryKind::FindClique, k));
    EXPECT_EQ(found.found, has.found);
    if (found.found) {
      // The witness must be a real k-clique of the *parent* graph.
      ASSERT_EQ(found.witness.size(), static_cast<std::size_t>(k));
      std::set<node_t> distinct(found.witness.begin(), found.witness.end());
      EXPECT_EQ(distinct.size(), found.witness.size());
      for (const node_t u : found.witness) {
        ASSERT_LT(u, g.num_nodes());
        for (const node_t v : found.witness) {
          if (u < v) {
            EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
          }
        }
      }
    }
  }

  const Answer max = sharded.run(make_query(QueryKind::MaxClique));
  EXPECT_EQ(max.omega, omega);
  ASSERT_EQ(max.witness.size(), static_cast<std::size_t>(omega));
  for (const node_t u : max.witness) {
    for (const node_t v : max.witness) {
      if (u < v) {
        EXPECT_TRUE(g.has_edge(u, v));
      }
    }
  }
  EXPECT_EQ(sharded.clique_number_upper_bound() >= omega, true);
}

TEST(ShardedEngineTest, ListMergesOwnedCliquesExactlyOnce) {
  const Graph g = social_like(80, 600, 0.5, 13);
  const PreparedGraph flat(g, {});
  ShardingOptions sharding;
  sharding.shards = 3;
  const ShardedEngine sharded(g, sharding, {});

  const int k = 3;
  const auto to_sorted_set = [](const Answer& a) {
    std::set<std::vector<node_t>> out;
    for (std::vector<node_t> c : a.cliques) {
      std::sort(c.begin(), c.end());
      const bool inserted = out.insert(std::move(c)).second;
      EXPECT_TRUE(inserted) << "duplicate clique in listing";
    }
    return out;
  };
  const Answer a = flat.run(make_query(QueryKind::List, k));
  const Answer b = sharded.run(make_query(QueryKind::List, k));
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.cliques.size(), a.cliques.size());
  EXPECT_EQ(to_sorted_set(b), to_sorted_set(a));

  // The result limit applies at the merge: exactly `limit` owned cliques,
  // marked truncated (the graph has more).
  ASSERT_GT(a.count, 5u);
  Query limited = make_query(QueryKind::List, k);
  limited.opts.result_limit = 5;
  const Answer cut = sharded.run(limited);
  EXPECT_EQ(cut.cliques.size(), 5u);
  EXPECT_TRUE(cut.truncated);
}

TEST(ShardedEngineTest, CancelTokenTruncates) {
  const Graph g = social_like(200, 1600, 0.4, 3);
  ShardingOptions sharding;
  sharding.shards = 2;
  const ShardedEngine sharded(g, sharding, {});
  Query q = make_query(QueryKind::Count, 4);
  q.opts.cancel = std::make_shared<std::atomic<bool>>(true);  // pre-fired
  const Answer a = sharded.run(q);
  EXPECT_TRUE(a.truncated);
}

TEST(ShardedEngineTest, PrepareIsIdempotentAndStatsMerge) {
  const Graph g = social_like(100, 700, 0.4, 8);
  ShardingOptions sharding;
  sharding.shards = 2;
  const ShardedEngine sharded(g, sharding, {});
  sharded.prepare();
  sharded.prepare();  // second call must be a no-op

  const Answer a = sharded.run(make_query(QueryKind::Count, 3));
  // Prepared up front: the query itself reports no preprocess work, and the
  // merged stats carry the merged count.
  EXPECT_EQ(a.stats.preprocess_seconds, 0.0);
  EXPECT_EQ(a.stats.cliques, a.count);
  EXPECT_GE(a.seconds, 0.0);
}

TEST(ShardedEngineTest, FingerprintSeparatesPartitions) {
  const Graph g = social_like(90, 600, 0.4, 2);
  ShardingOptions two;
  two.shards = 2;
  ShardingOptions three;
  three.shards = 3;
  ShardingOptions vertex2;
  vertex2.shards = 2;
  vertex2.policy = PartitionPolicy::VertexRange;

  const ShardedEngine a(g, two, {});
  const ShardedEngine b(g, three, {});
  const ShardedEngine c(g, vertex2, {});
  const std::uint64_t fa = shard::sharded_fingerprint("g", a);
  EXPECT_EQ(fa, shard::sharded_fingerprint("g", ShardedEngine(g, two, {})));  // deterministic
  EXPECT_NE(fa, shard::sharded_fingerprint("g", b));   // shard count folds in
  EXPECT_NE(fa, shard::sharded_fingerprint("g", c));   // policy/ranges fold in
  EXPECT_NE(fa, shard::sharded_fingerprint("h", a));   // graph id folds in
}

}  // namespace
}  // namespace c3
