#include "order/approx_degeneracy.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/pack.hpp"
#include "parallel/parallel.hpp"
#include "parallel/reduce.hpp"

namespace c3 {

ApproxDegeneracyResult approx_degeneracy_order(const Graph& g, double eps) {
  if (eps <= 0.0) throw std::invalid_argument("approx_degeneracy_order: eps must be positive");
  const node_t n = g.num_nodes();
  ApproxDegeneracyResult result;
  result.order.reserve(n);
  if (n == 0) return result;

  std::vector<std::atomic<node_t>> degree(n);
  parallel_for(0, n, [&](std::size_t v) {
    degree[v].store(g.degree(static_cast<node_t>(v)), std::memory_order_relaxed);
  });

  // The shrinking set of remaining vertex ids. pack_if preserves order, so
  // within every round vertices stay sorted by id — the tie-break the header
  // documents, independent of thread count.
  std::vector<node_t> alive(n);
  std::iota(alive.begin(), alive.end(), node_t{0});

  std::vector<node_t> position(n, kInvalidNode);
  const double threshold_factor = 1.0 + eps / 2.0;

  while (!alive.empty()) {
    ++result.rounds;
    const edge_t degree_sum = parallel_sum<edge_t>(0, alive.size(), [&](std::size_t i) {
      return degree[alive[i]].load(std::memory_order_relaxed);
    });
    const double avg = static_cast<double>(degree_sum) / static_cast<double>(alive.size());
    // Everything with degree <= (1 + eps/2) * average is peeled this round.
    // At most a 1/(1 + eps/2) fraction can exceed the threshold, so a
    // constant fraction is peeled and the loop finishes in O(log n) rounds.
    const auto threshold = static_cast<node_t>(threshold_factor * avg);

    std::vector<node_t> peeled = pack_if<node_t>(alive, [&](std::size_t i) {
      return degree[alive[i]].load(std::memory_order_relaxed) <= threshold;
    });
    std::vector<node_t> survivors = pack_if<node_t>(alive, [&](std::size_t i) {
      return degree[alive[i]].load(std::memory_order_relaxed) > threshold;
    });
    for (const node_t v : peeled) {
      position[v] = static_cast<node_t>(result.order.size());
      result.order.push_back(v);
    }

    // Decrement surviving neighbors of the peeled set (edges between two
    // peeled vertices vanish with both endpoints).
    parallel_for(
        0, peeled.size(),
        [&](std::size_t i) {
          for (const node_t w : g.neighbors(peeled[i])) {
            if (position[w] == kInvalidNode) degree[w].fetch_sub(1, std::memory_order_relaxed);
          }
        },
        16);
    alive = std::move(survivors);
  }

  // Orienting by `order` sends each edge from the earlier-peeled endpoint;
  // report the induced max out-degree (the (2 + eps)s quality guarantee).
  result.max_out_degree = parallel_max(0, n, node_t{0}, [&](std::size_t v) {
    node_t od = 0;
    for (const node_t w : g.neighbors(static_cast<node_t>(v)))
      od += position[w] > position[v] ? 1 : 0;
    return od;
  });
  return result;
}

}  // namespace c3
