// AVX2 bit-kernel backend: 256-bit lanes, popcount via the vpshufb nibble
// LUT + psadbw idiom (no VPOPCNTDQ below AVX-512). Compiled with
// -mavx2 only for this TU (see src/CMakeLists.txt); the rest of the library
// stays baseline so the binary still starts on non-AVX2 hardware.
#include "util/bitkernels.hpp"

#if defined(C3_BITKERNELS_AVX2)

#include <immintrin.h>

#include <cstring>

namespace c3::bits {
namespace {

constexpr std::size_t kLaneWords = 4;  // 256 bits

inline __m256i load(const std::uint64_t* p) {
  // Unaligned loads throughout: rows are 64-byte aligned but the fused
  // kernels start mid-row at the interval's first word.
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Per-64-bit-lane popcount of `v` (classic nibble-LUT + SAD).
inline __m256i popcnt64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
  const __m256i bytes =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(bytes, _mm256_setzero_si256());
}

inline std::uint64_t hsum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

void k_and_into(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    store(dst + w, _mm256_and_si256(load(a + w), load(b + w)));
  for (; w < nwords; ++w) dst[w] = a[w] & b[w];
}

void k_and_assign(std::uint64_t* dst, const std::uint64_t* a, std::size_t nwords) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    store(dst + w, _mm256_and_si256(load(dst + w), load(a + w)));
  for (; w < nwords; ++w) dst[w] &= a[w];
}

std::uint64_t k_popcount(const std::uint64_t* a, std::size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = _mm256_add_epi64(acc, popcnt64(load(a + w)));
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w]));
  return total;
}

std::uint64_t k_popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords)
    acc = _mm256_add_epi64(acc, popcnt64(_mm256_and_si256(load(a + w), load(b + w))));
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w) total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  return total;
}

std::uint64_t k_popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* c, std::size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const __m256i v =
        _mm256_and_si256(_mm256_and_si256(load(a + w), load(b + w)), load(c + w));
    acc = _mm256_add_epi64(acc, popcnt64(v));
  }
  std::uint64_t total = hsum(acc);
  for (; w < nwords; ++w)
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w] & c[w]));
  return total;
}

std::uint64_t k_intersect_interval(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* mask, std::uint64_t* dst,
                                   std::size_t nwords, std::size_t lo, std::size_t hi) {
  std::memset(dst, 0, nwords * sizeof(std::uint64_t));
  if (hi < lo) return 0;
  const std::size_t wlo = word_index(lo);
  const std::size_t whi = word_index(hi);
  const std::uint64_t head = ~std::uint64_t{0} << (lo % kWordBits);
  const std::uint64_t tail = (hi % kWordBits) == 63
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << ((hi % kWordBits) + 1)) - 1);
  if (wlo == whi) {
    const std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head & tail;
    dst[wlo] = m;
    return static_cast<std::uint64_t>(std::popcount(m));
  }
  std::uint64_t m = a[wlo] & b[wlo] & mask[wlo] & head;
  dst[wlo] = m;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(m));
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = wlo + 1;
  for (; w + kLaneWords <= whi; w += kLaneWords) {
    const __m256i v =
        _mm256_and_si256(_mm256_and_si256(load(a + w), load(b + w)), load(mask + w));
    store(dst + w, v);
    acc = _mm256_add_epi64(acc, popcnt64(v));
  }
  total += hsum(acc);
  for (; w < whi; ++w) {
    m = a[w] & b[w] & mask[w];
    dst[w] = m;
    total += static_cast<std::uint64_t>(std::popcount(m));
  }
  m = a[whi] & b[whi] & mask[whi] & tail;
  dst[whi] = m;
  total += static_cast<std::uint64_t>(std::popcount(m));
  return total;
}

std::uint64_t k_intersect_above(const std::uint64_t* a, const std::uint64_t* mask,
                                std::uint64_t* dst, std::size_t nwords, std::size_t x) {
  const std::size_t wx = word_index(x);
  std::memset(dst, 0, wx * sizeof(std::uint64_t));
  const std::uint64_t keep =
      (x % kWordBits) == 63 ? 0 : ~std::uint64_t{0} << ((x % kWordBits) + 1);
  dst[wx] = a[wx] & mask[wx] & keep;
  std::uint64_t total = static_cast<std::uint64_t>(std::popcount(dst[wx]));
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = wx + 1;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const __m256i v = _mm256_and_si256(load(a + w), load(mask + w));
    store(dst + w, v);
    acc = _mm256_add_epi64(acc, popcnt64(v));
  }
  total += hsum(acc);
  for (; w < nwords; ++w) {
    dst[w] = a[w] & mask[w];
    total += static_cast<std::uint64_t>(std::popcount(dst[w]));
  }
  return total;
}

void k_for_each_bit_and(const std::uint64_t* a, const std::uint64_t* b, std::size_t nwords,
                        void* ctx, void (*fn)(void* ctx, std::size_t bit)) {
  std::size_t w = 0;
  for (; w + kLaneWords <= nwords; w += kLaneWords) {
    const __m256i v = _mm256_and_si256(load(a + w), load(b + w));
    if (_mm256_testz_si256(v, v)) continue;  // skip empty 256-bit blocks
    alignas(32) std::uint64_t lanes[kLaneWords];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    for (std::size_t i = 0; i < kLaneWords; ++i) {
      std::uint64_t word = lanes[i];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(ctx, (w + i) * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }
  for (; w < nwords; ++w) {
    std::uint64_t word = a[w] & b[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(ctx, w * kWordBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

constexpr KernelTable kTable{
    k_and_into,        k_and_assign,    k_popcount,           k_popcount_and,
    k_popcount_and3,   k_intersect_interval,
    k_intersect_above, k_for_each_bit_and,
    KernelBackend::AVX2,
};

}  // namespace

namespace detail {
const KernelTable* avx2_table() noexcept { return &kTable; }
}  // namespace detail

}  // namespace c3::bits

#else  // !C3_BITKERNELS_AVX2

namespace c3::bits::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace c3::bits::detail

#endif
