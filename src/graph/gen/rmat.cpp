#include <bit>

#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace c3 {

Graph rmat(node_t n, edge_t m, double a, double b, double c, std::uint64_t seed) {
  if (n < 2) return build_graph(EdgeList{}, n);
  const int levels = std::bit_width(static_cast<std::uint32_t>(n - 1));
  EdgeList edges(m);
  // Independent stream per edge: deterministic regardless of thread count.
  parallel_for(0, m, [&](std::size_t i) {
    Xoshiro256 rng = Xoshiro256(seed).fork(i);
    while (true) {
      node_t u = 0, v = 0;
      for (int l = 0; l < levels; ++l) {
        const double r = rng.next_double();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left quadrant: nothing set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u == v || u >= n || v >= n) continue;  // resample out-of-range picks
      edges[i] = Edge{u, v};
      break;
    }
  });
  return build_graph(edges, n);
}

}  // namespace c3
