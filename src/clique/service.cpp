#include "clique/service.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace c3 {

/// One named graph. In-memory entries own their Graph and engine from
/// registration; snapshot entries hold only the path until open_once fires.
/// The members written by the lazy open (snap, open_error) are guarded by
/// the once-latch: they are written only inside call_once and read only
/// after it returns, so post-open reads need no further synchronization.
struct CliqueService::Entry {
  std::string id;

  // In-memory source (heap-held so engine's Graph reference survives entry
  // moves; entries themselves are unique_ptr-held for the same reason).
  std::unique_ptr<Graph> graph;
  std::unique_ptr<PreparedGraph> local;

  // Snapshot source.
  std::filesystem::path path;
  snapshot::SnapshotOpenOptions open_opts;
  std::optional<CliqueOptions> expected;
  std::once_flag open_once;
  std::optional<snapshot::Snapshot> snap;
  std::exception_ptr open_error;
  // Published once the open succeeded (release after the emplace), so
  // catalog() can report shape without taking the open latch.
  std::atomic<bool> ready{false};

  [[nodiscard]] bool from_snapshot() const noexcept { return local == nullptr; }

  [[nodiscard]] bool opened() const noexcept {
    return local != nullptr || ready.load(std::memory_order_acquire);
  }

  /// The entry's engine, opening the snapshot on first use. A failed open is
  /// sticky: the latch has fired, so every later call rethrows the recorded
  /// failure instead of retrying against a file that already refused.
  [[nodiscard]] const PreparedGraph& engine() {
    if (local != nullptr) return *local;
    std::call_once(open_once, [this] {
      try {
        snap.emplace(expected.has_value()
                         ? snapshot::Snapshot::open(path, *expected, open_opts)
                         : snapshot::Snapshot::open(path, open_opts));
        ready.store(true, std::memory_order_release);
      } catch (...) {
        open_error = std::current_exception();
      }
    });
    if (open_error != nullptr) std::rethrow_exception(open_error);
    return snap->engine();
  }
};

CliqueService::CliqueService() = default;
CliqueService::~CliqueService() = default;

void CliqueService::add_graph(std::string id, Graph graph, const CliqueOptions& opts) {
  auto entry = std::make_unique<Entry>();
  entry->id = std::move(id);
  entry->graph = std::make_unique<Graph>(std::move(graph));
  entry->local = std::make_unique<PreparedGraph>(*entry->graph, opts);
  const std::unique_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& existing : entries_) {
    if (existing->id == entry->id) {
      throw std::invalid_argument("CliqueService: duplicate graph id '" + entry->id + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

void CliqueService::add_snapshot(std::string id, std::filesystem::path path,
                                 const snapshot::SnapshotOpenOptions& open,
                                 std::optional<CliqueOptions> expected) {
  auto entry = std::make_unique<Entry>();
  entry->id = std::move(id);
  entry->path = std::move(path);
  entry->open_opts = open;
  entry->expected = std::move(expected);
  const std::unique_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& existing : entries_) {
    if (existing->id == entry->id) {
      throw std::invalid_argument("CliqueService: duplicate graph id '" + entry->id + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

bool CliqueService::has_graph(std::string_view id) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& entry : entries_) {
    if (entry->id == id) return true;
  }
  return false;
}

std::size_t CliqueService::size() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  return entries_.size();
}

std::vector<ServiceGraphInfo> CliqueService::catalog() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  std::vector<ServiceGraphInfo> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    ServiceGraphInfo info;
    info.id = entry->id;
    info.from_snapshot = entry->from_snapshot();
    info.opened = entry->opened();
    if (info.opened) {
      const Graph& g =
          entry->local != nullptr ? entry->local->graph() : entry->snap->engine().graph();
      info.num_nodes = g.num_nodes();
      info.num_edges = g.num_edges();
    }
    out.push_back(std::move(info));
  }
  return out;
}

CliqueService::Entry& CliqueService::find(std::string_view id) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& entry : entries_) {
    if (entry->id == id) return *entry;
  }
  throw std::invalid_argument("CliqueService: unknown graph id '" + std::string(id) + "'");
}

const PreparedGraph& CliqueService::engine(std::string_view id) const {
  return find(id).engine();
}

Answer CliqueService::run(std::string_view id, const Query& query) const {
  return engine(id).run(query);
}

void CliqueService::prepare(std::string_view id) const {
  const PreparedGraph& e = engine(id);
  e.prepare();
  const Graph& g = e.graph();
  if (g.num_nodes() > 0 && g.num_edges() > 0) (void)e.clique_number_upper_bound();
}

}  // namespace c3
