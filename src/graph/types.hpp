// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace c3 {

/// Vertex identifier. 32 bits suffice for the graph scales this library
/// targets (the paper's largest graph, Orkut, has 3.1M vertices).
using node_t = std::uint32_t;

/// Edge index / adjacency offset. 64 bits so offset arithmetic (2m entries)
/// never overflows.
using edge_t = std::uint64_t;

/// Clique and triangle counts.
using count_t = std::uint64_t;

inline constexpr node_t kInvalidNode = static_cast<node_t>(-1);

/// An undirected edge as an (unordered) vertex pair.
struct Edge {
  node_t u;
  node_t v;

  friend constexpr bool operator==(const Edge&, const Edge&) noexcept = default;
};

/// A flat edge list, the interchange format between generators, I/O, and the
/// graph builder.
using EdgeList = std::vector<Edge>;

}  // namespace c3
