#include "triangle/triangle_count.hpp"

#include "parallel/padded.hpp"

namespace c3 {

count_t count_triangles(const Digraph& dag) {
  PerWorker<count_t> partial;
  for_each_triangle(dag, [&](node_t, node_t, node_t) { ++partial.local(); });
  return partial.reduce(count_t{0}, [](count_t a, count_t b) { return a + b; });
}

}  // namespace c3
