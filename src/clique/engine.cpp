#include "clique/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "clique/arbcount.hpp"
#include "clique/bruteforce.hpp"
#include "clique/c3list.hpp"
#include "clique/c3list_cd.hpp"
#include "clique/hybrid.hpp"
#include "clique/kclist.hpp"
#include "clique/order_util.hpp"
#include "order/approx_degeneracy.hpp"
#include "order/degeneracy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/scratch_pool.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Trivial clique sizes that need no prepared artifacts. k <= 0 -> none;
/// k == 1 -> vertices; k == 2 -> edges.
bool trivial_k(const Graph& g, int k, const CliqueCallback* callback, CliqueResult& out) {
  if (k > 2) return false;
  if (k <= 0) return true;
  if (k == 1) {
    out.count = g.num_nodes();
    if (callback != nullptr) {
      out.count = 0;
      for (node_t v = 0; v < g.num_nodes(); ++v) {
        const node_t clique[] = {v};
        ++out.count;
        if (!(*callback)(clique)) break;
      }
    }
    out.stats.cliques = out.count;
    return true;
  }
  out.count = g.num_edges();
  if (callback != nullptr) {
    out.count = 0;
    for (const Edge& e : g.endpoints()) {
      const node_t clique[] = {e.u, e.v};
      ++out.count;
      if (!(*callback)(clique)) break;
    }
  }
  out.stats.cliques = out.count;
  return true;
}

}  // namespace

// Thread-safety of lazy preparation: each artifact is guarded by its own
// std::once_flag. The first query to need it runs the build inside
// call_once while concurrent queries block on the latch; the optional is
// written only inside the latched region and read only after it, so reads
// need no further synchronization. Timing: the builder adds the elapsed
// seconds to the engine-wide total *and* to its own query's `prep`
// accumulator — waiting queries report 0, preserving the "preprocess cost
// is attributed to the query that paid it" contract under concurrency.
struct PreparedGraph::Memo {
  std::once_flag dag_once, comms_once, edge_order_once, degeneracy_once;
  std::optional<Digraph> dag;
  std::optional<EdgeCommunities> comms;
  std::optional<EdgeOrderResult> edge_order;
  std::optional<node_t> exact_degeneracy;
  // Published state of each optional above (set with release after the value
  // is written): lets the snapshot writer's *_if_built accessors read the
  // artifacts without taking the latch, racing safely with builders.
  std::atomic<bool> dag_ready{false}, comms_ready{false}, edge_order_ready{false},
      degeneracy_ready{false};
  std::atomic<double> prepare_seconds{0.0};
  std::atomic<int> artifacts_built{0};
  ScratchPool<QueryScratch> pool;

  /// Runs `build` at most once behind `flag`, with the accounting contract
  /// in one place: the builder's elapsed time lands in the engine-wide
  /// total, the artifact counter, and the building query's `prep`.
  template <typename Build>
  void build_once(std::once_flag& flag, std::atomic<bool>& ready, double& prep, Build&& build) {
    std::call_once(flag, [&] {
      WallTimer timer;
      build();
      const double s = timer.seconds();
      ready.store(true, std::memory_order_release);
      prepare_seconds.fetch_add(s, std::memory_order_relaxed);
      artifacts_built.fetch_add(1, std::memory_order_relaxed);
      prep += s;
    });
  }

  /// Installs an already-built artifact (the snapshot loader's path): fires
  /// the latch with a plain move — no build, no time — so later queries see
  /// it as prepared. Counts toward artifacts_built like a lazy build would.
  template <typename T, typename Opt>
  void install(std::once_flag& flag, std::atomic<bool>& ready, Opt& slot, T&& value) {
    std::call_once(flag, [&] {
      slot.emplace(std::forward<T>(value));
      ready.store(true, std::memory_order_release);
      artifacts_built.fetch_add(1, std::memory_order_relaxed);
    });
  }
};

PreparedGraph::PreparedGraph(const Graph& g, const CliqueOptions& opts)
    : g_(&g), opts_(opts), memo_(std::make_unique<Memo>()) {}

PreparedGraph::PreparedGraph(const Graph& g, const CliqueOptions& opts, PreparedArtifacts loaded)
    : PreparedGraph(g, opts) {
  if (loaded.dag.has_value()) {
    memo_->install(memo_->dag_once, memo_->dag_ready, memo_->dag, *std::move(loaded.dag));
  }
  if (loaded.communities.has_value()) {
    memo_->install(memo_->comms_once, memo_->comms_ready, memo_->comms,
                   *std::move(loaded.communities));
  }
  if (loaded.edge_order.has_value()) {
    memo_->install(memo_->edge_order_once, memo_->edge_order_ready, memo_->edge_order,
                   *std::move(loaded.edge_order));
  }
  if (loaded.exact_degeneracy.has_value()) {
    memo_->install(memo_->degeneracy_once, memo_->degeneracy_ready, memo_->exact_degeneracy,
                   *loaded.exact_degeneracy);
  }
}

PreparedGraph::PreparedGraph(PreparedGraph&&) noexcept = default;
PreparedGraph& PreparedGraph::operator=(PreparedGraph&&) noexcept = default;
PreparedGraph::~PreparedGraph() = default;

double PreparedGraph::prepare_seconds() const noexcept {
  return memo_->prepare_seconds.load(std::memory_order_relaxed);
}

int PreparedGraph::artifacts_built() const noexcept {
  return memo_->artifacts_built.load(std::memory_order_relaxed);
}

const Digraph* PreparedGraph::dag_if_built() const noexcept {
  return memo_->dag_ready.load(std::memory_order_acquire) ? &*memo_->dag : nullptr;
}

const EdgeCommunities* PreparedGraph::communities_if_built() const noexcept {
  return memo_->comms_ready.load(std::memory_order_acquire) ? &*memo_->comms : nullptr;
}

const EdgeOrderResult* PreparedGraph::edge_order_if_built() const noexcept {
  return memo_->edge_order_ready.load(std::memory_order_acquire) ? &*memo_->edge_order : nullptr;
}

std::optional<node_t> PreparedGraph::exact_degeneracy_if_built() const noexcept {
  if (!memo_->degeneracy_ready.load(std::memory_order_acquire)) return std::nullopt;
  return memo_->exact_degeneracy;
}

const Digraph& PreparedGraph::dag(double& prep) const {
  memo_->build_once(memo_->dag_once, memo_->dag_ready, prep, [&] {
    std::vector<node_t> order;
    switch (opts_.algorithm) {
      case Algorithm::ArbCount:
        // ArbCount's paper-native default is the (2+eps)-approximate order.
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ApproxDegeneracy, opts_.order_seed);
        break;
      case Algorithm::Hybrid:
        // The hybrid's outer order is always the low-depth approximate one;
        // the exact degeneracy order is recomputed per out-neighborhood
        // inside the search (Section 4.2).
        order = approx_degeneracy_order(*g_, opts_.eps).order;
        break;
      default:
        order = make_vertex_order(*g_, opts_.vertex_order, opts_.eps,
                                  VertexOrderKind::ExactDegeneracy, opts_.order_seed);
        break;
    }
    memo_->dag.emplace(Digraph::orient(*g_, order));
  });
  return *memo_->dag;
}

const EdgeCommunities& PreparedGraph::communities(double& prep) const {
  const Digraph& d = dag(prep);  // built (and attributed) first
  memo_->build_once(memo_->comms_once, memo_->comms_ready, prep,
                    [&] { memo_->comms.emplace(EdgeCommunities::build(d)); });
  return *memo_->comms;
}

const EdgeOrderResult& PreparedGraph::edge_order(double& prep) const {
  memo_->build_once(memo_->edge_order_once, memo_->edge_order_ready, prep, [&] {
    memo_->edge_order.emplace(opts_.edge_order == EdgeOrderKind::ExactCommunityDegeneracy
                                  ? community_degeneracy_order(*g_)
                                  : approx_community_degeneracy_order(*g_, opts_.eps));
  });
  return *memo_->edge_order;
}

node_t PreparedGraph::exact_degeneracy(double& prep) const {
  memo_->build_once(memo_->degeneracy_once, memo_->degeneracy_ready, prep,
                    [&] { memo_->exact_degeneracy = degeneracy_order(*g_).degeneracy; });
  return *memo_->exact_degeneracy;
}

void PreparedGraph::prepare() const {
  double prep = 0.0;
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      (void)communities(prep);
      break;
    case Algorithm::C3ListCD:
      (void)edge_order(prep);
      break;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      (void)dag(prep);
      break;
    case Algorithm::BruteForce:
      break;
  }
}

node_t PreparedGraph::upper_bound(double& prep) const {
  if (g_->num_nodes() == 0) return 0;
  if (g_->num_edges() == 0) return 1;
  switch (opts_.algorithm) {
    case Algorithm::C3List:
      // A k-clique needs a community of k-2 (Observation 1).
      return communities(prep).max_size() + 2;
    case Algorithm::C3ListCD:
      // Its lowest-ordered edge has the remaining k-2 vertices in V'(e).
      return edge_order(prep).sigma + 2;
    case Algorithm::Hybrid:
    case Algorithm::KCList:
    case Algorithm::ArbCount:
      // The clique's lowest-ranked vertex sees the rest in N+(v).
      return dag(prep).max_out_degree() + 1;
    case Algorithm::BruteForce:
      break;
  }
  // omega <= s + 1 for an s-degenerate graph.
  return exact_degeneracy(prep) + 1;
}

node_t PreparedGraph::clique_number_upper_bound() const {
  double prep = 0.0;  // cost still accrues to prepare_seconds()
  return upper_bound(prep);
}

CliqueResult PreparedGraph::dispatch(int k, const CliqueCallback* callback, double& prep) const {
  switch (opts_.algorithm) {
    case Algorithm::C3List: {
      const Digraph& d = dag(prep);
      const EdgeCommunities& c = communities(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return c3list_search(d, c, k, callback, opts_, *lease);
    }
    case Algorithm::C3ListCD: {
      const EdgeOrderResult& order = edge_order(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return c3list_cd_search(*g_, order, k, callback, opts_, *lease);
    }
    case Algorithm::Hybrid: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return hybrid_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::KCList: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return kclist_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::ArbCount: {
      const Digraph& d = dag(prep);
      const ScratchLease lease = memo_->pool.acquire();
      return arbcount_search(d, k, callback, opts_, *lease);
    }
    case Algorithm::BruteForce: {
      CliqueResult r;
      WallTimer timer;
      r.count = callback != nullptr ? brute_force_list(*g_, k, *callback)
                                    : brute_force_count(*g_, k);
      r.stats.cliques = r.count;
      r.stats.search_seconds = timer.seconds();
      return r;
    }
  }
  throw std::invalid_argument("PreparedGraph: unknown algorithm");
}

CliqueResult PreparedGraph::run(int k, const CliqueCallback* callback) const {
  double prep = 0.0;
  CliqueResult result;
  if (!trivial_k(*g_, k, callback, result)) result = dispatch(k, callback, prep);
  // Only preparation performed during *this* query; 0 on reuse or when
  // another query built the artifacts while we waited.
  result.stats.preprocess_seconds = prep;
  return result;
}

CliqueResult PreparedGraph::count(int k) const { return run(k, nullptr); }

CliqueResult PreparedGraph::list(int k, const CliqueCallback& callback) const {
  return run(k, &callback);
}

CliqueSpectrum PreparedGraph::spectrum(int kmax) const {
  CliqueSpectrum out;
  out.counts.assign(2, 0);
  if (g_->num_nodes() == 0) return out;
  out.counts[1] = g_->num_nodes();
  out.omega = 1;
  // kmax clamps the trivial sizes too ("every k = 1..min(kmax, omega)").
  if (g_->num_edges() == 0 || kmax == 1) return out;
  out.counts.push_back(g_->num_edges());
  out.omega = 2;
  // The k >= 3 loop below could never run; don't build artifacts for it.
  if (kmax == 2) return out;

  double prep = 0.0;
  const auto ub = static_cast<int>(upper_bound(prep));
  const int limit = kmax > 0 ? std::min(kmax, ub) : ub;
  for (int k = 3; k <= limit; ++k) {
    const CliqueResult r = dispatch(k, nullptr, prep);
    out.search_seconds += r.stats.search_seconds;
    if (r.count == 0) break;
    out.counts.push_back(r.count);
    out.omega = static_cast<node_t>(k);
  }
  out.preprocess_seconds = prep;
  return out;
}

std::vector<count_t> PreparedGraph::per_vertex_counts(int k) const {
  std::vector<std::atomic<count_t>> acc(g_->num_nodes());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (const node_t v : clique) acc[v].fetch_add(1, std::memory_order_relaxed);
    return true;
  };
  (void)list(k, tally);
  std::vector<count_t> out(g_->num_nodes());
  for (node_t v = 0; v < g_->num_nodes(); ++v) out[v] = acc[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<count_t> PreparedGraph::per_edge_counts(int k) const {
  std::vector<std::atomic<count_t>> acc(g_->num_edges());
  const CliqueCallback tally = [&](std::span<const node_t> clique) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const edge_t e = g_->edge_id(clique[i], clique[j]);
        acc[e].fetch_add(1, std::memory_order_relaxed);
      }
    }
    return true;
  };
  (void)list(k, tally);
  std::vector<count_t> out(g_->num_edges());
  for (edge_t e = 0; e < g_->num_edges(); ++e) out[e] = acc[e].load(std::memory_order_relaxed);
  return out;
}

bool PreparedGraph::has_clique(int k) const { return find_clique(k).has_value(); }

std::optional<std::vector<node_t>> PreparedGraph::find_clique(int k) const {
  if (k <= 0) return std::nullopt;
  std::optional<std::vector<node_t>> witness;
  std::mutex guard;
  const CliqueCallback stop_at_first = [&](std::span<const node_t> clique) {
    const std::lock_guard<std::mutex> lock(guard);
    if (!witness.has_value()) witness.emplace(clique.begin(), clique.end());
    return false;  // stop the enumeration
  };
  (void)list(k, stop_at_first);
  return witness;
}

node_t PreparedGraph::max_clique_size() const {
  if (g_->num_nodes() == 0) return 0;
  if (g_->num_edges() == 0) return 1;
  node_t lo = 2;  // always feasible: the graph has an edge
  node_t hi = clique_number_upper_bound();
  while (lo < hi) {
    const node_t mid = lo + (hi - lo + 1) / 2;
    if (has_clique(static_cast<int>(mid))) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<node_t> PreparedGraph::max_clique() const {
  const node_t omega = max_clique_size();
  if (omega == 0) return {};
  if (omega == 1) return {0};
  return find_clique(static_cast<int>(omega)).value();
}

}  // namespace c3
