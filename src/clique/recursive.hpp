// The recursive clique search — Algorithm 2 of the paper.
//
// Searches for c-cliques inside a local subgraph (LocalGraph) restricted to
// a candidate set I, growing the partial clique by an *edge* (2 vertices)
// per level:
//
//   * base case c == 1: every candidate completes a clique (line 2);
//   * base case c == 2: every edge inside I completes a clique (line 4);
//   * otherwise: iterate the pairs (u, v) in I x I whose distance
//     delta_I(u, v) — the number of candidates ordered between them — is at
//     least c - 2 (line 6: the relevant-pair pruning of Figure 2), probe the
//     edge (line 7, a bit test), intersect I with the edge's community
//     (line 8, word-parallel AND restricted to the open interval (u, v)),
//     and recurse with c - 2 (line 9).
//
// Correctness hinges on Observation 1: within a clique oriented by a total
// order, the pair (first, last) — the supporting edge — is the unique edge
// whose community contains the rest of the clique, so every clique is
// produced exactly once. The interval restriction in the intersection is
// what enforces "community" (= vertices ordered strictly between the
// endpoints) rather than "common neighborhood".
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "clique/common.hpp"
#include "clique/local_graph.hpp"
#include "graph/types.hpp"
#include "util/bitkernels.hpp"

namespace c3 {

/// Per-worker state for one sequence of recursive searches: the local graph
/// being searched, instrumentation counters, optional listing support, and
/// the per-level scratch (candidate arrays + community masks).
struct SearchContext {
  const LocalGraph* lg = nullptr;
  bool prune = true;  ///< the relevant-pair criterion (ablation switch)
  LocalCounters* ctr = nullptr;

  /// Listing mode when non-null: cliques are materialized through
  /// member_to_orig into clique_stack and reported via callback.
  const CliqueCallback* callback = nullptr;
  std::vector<node_t> clique_stack;
  const node_t* member_to_orig = nullptr;
  bool stopped = false;  ///< callback requested early termination

  /// Cross-worker early-stop flag, shared by all contexts of one run. When a
  /// callback returns false anywhere, every other worker observes it at its
  /// next poll point (each recursion entry and each emission) instead of
  /// finishing its in-flight top-level task.
  std::atomic<bool>* stop = nullptr;

  /// Refreshes `stopped` from the shared flag; returns the merged state.
  [[nodiscard]] bool poll_stop() noexcept {
    if (!stopped && stop != nullptr && stop->load(std::memory_order_relaxed)) stopped = true;
    return stopped;
  }

  /// Records a callback's false return locally and broadcasts it.
  void request_stop() noexcept {
    stopped = true;
    if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
  }

  /// Grows the per-level scratch to cover candidate sets of size `gamma`
  /// and recursion depth `depth` with `words` words per mask.
  void ensure_capacity(int gamma, int depth, int words);

  [[nodiscard]] int* cand_at(int level) noexcept {
    return cand_pool_.data() + static_cast<std::size_t>(level) * cand_stride_;
  }
  [[nodiscard]] std::uint64_t* mask_at(int level) noexcept {
    return mask_pool_.data() + static_cast<std::size_t>(level) * mask_stride_;
  }

 private:
  std::vector<int> cand_pool_;
  // Community/candidate masks follow the kernel storage contract
  // (util/bitkernels.hpp): 64-byte-aligned pool, stride = the LocalGraph's
  // padded row stride, padding words zero.
  bits::KernelWords mask_pool_;
  std::size_t cand_stride_ = 0;
  std::size_t mask_stride_ = 0;
  std::size_t depth_ = 0;
};

/// Runs Algorithm 2: counts (and in listing mode reports) the c-cliques of
/// ctx.lg restricted to candidates `I` (sorted ascending local ids) with
/// membership mask `I_mask`. `level` indexes the scratch arrays and must
/// leave room for ceil(c/2) further levels.
[[nodiscard]] count_t search_cliques(SearchContext& ctx, std::span<const int> I,
                                     const std::uint64_t* I_mask, int c, int level);

/// Runs the *triangle-growth* generalization the paper's conclusion poses as
/// future work ("extend the cliques by larger motifs such as triangles"):
/// each level adds a triangle (a, x, b) — a/b the extremes and x the minimal
/// internal vertex of the remaining clique — and recurses with c - 3 on
/// B(a,b) ∩ N(x) ∩ {> x}. Uniqueness: (min, second-min, max) of every clique
/// is a canonical triple, so each clique is still produced exactly once.
/// Depth shrinks from ~c/2 to ~c/3 levels.
[[nodiscard]] count_t search_cliques_tri(SearchContext& ctx, std::span<const int> I,
                                         const std::uint64_t* I_mask, int c, int level);

/// Convenience wrapper: search over *all* vertices of the local graph
/// (candidate set = the full universe). Used by the top level of Algorithm 1
/// (I = C(e)), Algorithm 3 (I = V'(e)), and the hybrid's per-vertex
/// subproblems (I = N+(v)).
[[nodiscard]] count_t search_cliques_all(SearchContext& ctx, int c, bool triangle_growth = false);

/// Vertex-at-a-time recursion over the candidate mask: pick the next clique
/// vertex x ascending (= respecting the orientation), descend into
/// mask ∩ N(x) ∩ {> x} with c - 1. The arboricity-style counterpart of
/// search_cliques — one vertex per level instead of an edge — shared by
/// ArbCount and kcList's dense-subproblem path. `level` indexes the mask
/// scratch and must leave room for c - 2 further levels.
[[nodiscard]] count_t search_cliques_vertex(SearchContext& ctx, const std::uint64_t* mask, int c,
                                            int level);

/// Vertex-growth search over the full local universe (candidate mask = all
/// of ctx.lg); sizes the scratch itself.
[[nodiscard]] count_t search_cliques_vertex_all(SearchContext& ctx, int c);

}  // namespace c3
