#include "clique/service.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "clique/answer_cache.hpp"
#include "shard/sharded_engine.hpp"
#include "snapshot/shard_manifest.hpp"

namespace c3 {

/// One named graph, from one of four sources: an in-memory engine, an
/// in-memory sharded engine, a flat snapshot, or a sharded manifest (the
/// file kinds are told apart by magic at first open). The members written by
/// the lazy open (snap, sharded_snap, open_error) are guarded by the
/// once-latch: they are written only inside call_once and read only after it
/// returns, so post-open reads need no further synchronization.
struct CliqueService::Entry {
  std::string id;

  // In-memory source (heap-held so engine's Graph reference survives entry
  // moves; entries themselves are unique_ptr-held for the same reason).
  std::unique_ptr<Graph> graph;
  std::unique_ptr<PreparedGraph> local;
  std::unique_ptr<shard::ShardedEngine> local_sharded;

  // Snapshot source.
  std::filesystem::path path;
  snapshot::SnapshotOpenOptions open_opts;
  std::optional<CliqueOptions> expected;
  std::once_flag open_once;
  std::optional<snapshot::Snapshot> snap;
  std::optional<snapshot::ShardedSnapshot> sharded_snap;
  std::exception_ptr open_error;
  // Published once the open succeeded (release after the emplace), so
  // catalog() can report shape without taking the open latch.
  std::atomic<bool> ready{false};

  [[nodiscard]] bool from_snapshot() const noexcept {
    return local == nullptr && local_sharded == nullptr;
  }

  [[nodiscard]] bool opened() const noexcept {
    return !from_snapshot() || ready.load(std::memory_order_acquire);
  }

  /// Fires the open latch for a snapshot entry. A failed open is sticky: the
  /// latch has fired, so every later call rethrows the recorded failure
  /// instead of retrying against a file that already refused.
  void ensure_open() {
    if (!from_snapshot()) return;
    std::call_once(open_once, [this] {
      try {
        if (snapshot::is_shard_manifest(path)) {
          sharded_snap.emplace(expected.has_value()
                                   ? snapshot::ShardedSnapshot::open(path, *expected, open_opts)
                                   : snapshot::ShardedSnapshot::open(path, open_opts));
        } else {
          snap.emplace(expected.has_value()
                           ? snapshot::Snapshot::open(path, *expected, open_opts)
                           : snapshot::Snapshot::open(path, open_opts));
        }
        ready.store(true, std::memory_order_release);
      } catch (...) {
        open_error = std::current_exception();
      }
    });
    if (open_error != nullptr) std::rethrow_exception(open_error);
  }

  /// The composed sharded engine, or nullptr when this entry is flat.
  /// Only valid after ensure_open() for snapshot entries.
  [[nodiscard]] const shard::ShardedEngine* sharded() const {
    if (local_sharded != nullptr) return local_sharded.get();
    if (sharded_snap.has_value()) return &sharded_snap->engine();
    return nullptr;
  }

  /// The entry's single engine, opening the snapshot on first use. A
  /// sharded entry has no single engine: refuse with a message that names
  /// the routing fix rather than handing back one shard.
  [[nodiscard]] const PreparedGraph& engine() {
    if (local != nullptr) return *local;
    ensure_open();
    if (sharded() != nullptr) {
      throw std::runtime_error("CliqueService: graph '" + id +
                               "' is sharded; route queries through CliqueService::run()");
    }
    return snap->engine();
  }
};

CliqueService::CliqueService() = default;
CliqueService::~CliqueService() = default;

void CliqueService::add_graph(std::string id, Graph graph, const CliqueOptions& opts) {
  auto entry = std::make_unique<Entry>();
  entry->id = std::move(id);
  entry->graph = std::make_unique<Graph>(std::move(graph));
  entry->local = std::make_unique<PreparedGraph>(*entry->graph, opts);
  const std::unique_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& existing : entries_) {
    if (existing->id == entry->id) {
      throw std::invalid_argument("CliqueService: duplicate graph id '" + entry->id + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

void CliqueService::add_snapshot(std::string id, std::filesystem::path path,
                                 const snapshot::SnapshotOpenOptions& open,
                                 std::optional<CliqueOptions> expected) {
  auto entry = std::make_unique<Entry>();
  entry->id = std::move(id);
  entry->path = std::move(path);
  entry->open_opts = open;
  entry->expected = std::move(expected);
  const std::unique_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& existing : entries_) {
    if (existing->id == entry->id) {
      throw std::invalid_argument("CliqueService: duplicate graph id '" + entry->id + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

void CliqueService::add_sharded_graph(std::string id, const Graph& graph,
                                      const shard::ShardingOptions& sharding,
                                      const CliqueOptions& opts) {
  auto entry = std::make_unique<Entry>();
  entry->id = std::move(id);
  entry->local_sharded = std::make_unique<shard::ShardedEngine>(graph, sharding, opts);
  const std::unique_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& existing : entries_) {
    if (existing->id == entry->id) {
      throw std::invalid_argument("CliqueService: duplicate graph id '" + entry->id + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

bool CliqueService::has_graph(std::string_view id) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& entry : entries_) {
    if (entry->id == id) return true;
  }
  return false;
}

std::size_t CliqueService::size() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  return entries_.size();
}

std::vector<ServiceGraphInfo> CliqueService::catalog() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  std::vector<ServiceGraphInfo> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    ServiceGraphInfo info;
    info.id = entry->id;
    info.from_snapshot = entry->from_snapshot();
    info.opened = entry->opened();
    if (info.opened) {
      if (const shard::ShardedEngine* se = entry->sharded(); se != nullptr) {
        info.num_nodes = se->num_nodes();
        info.num_edges = se->num_edges();
        info.shards = static_cast<int>(se->num_shards());
      } else {
        const Graph& g =
            entry->local != nullptr ? entry->local->graph() : entry->snap->engine().graph();
        info.num_nodes = g.num_nodes();
        info.num_edges = g.num_edges();
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

CliqueService::Entry& CliqueService::find(std::string_view id) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mutex_);
  for (const auto& entry : entries_) {
    if (entry->id == id) return *entry;
  }
  throw std::invalid_argument("CliqueService: unknown graph id '" + std::string(id) + "'");
}

const PreparedGraph& CliqueService::engine(std::string_view id) const {
  return find(id).engine();
}

const shard::ShardedEngine* CliqueService::sharded_engine(std::string_view id) const {
  Entry& entry = find(id);
  entry.ensure_open();
  return entry.sharded();
}

Answer CliqueService::run(std::string_view id, const Query& query) const {
  return run(id, query, nullptr);
}

Answer CliqueService::run(std::string_view id, const Query& query,
                          obs::TraceContext* trace) const {
  Entry& entry = find(id);
  entry.ensure_open();
  if (const shard::ShardedEngine* se = entry.sharded(); se != nullptr) {
    return se->run(query, trace);
  }
  return entry.engine().run(query, trace);
}

std::uint64_t CliqueService::fingerprint(std::string_view id) const {
  Entry& entry = find(id);
  entry.ensure_open();
  if (const shard::ShardedEngine* se = entry.sharded(); se != nullptr) {
    return shard::sharded_fingerprint(id, *se);
  }
  return engine_fingerprint(id, entry.engine());
}

void CliqueService::prepare(std::string_view id) const {
  Entry& entry = find(id);
  entry.ensure_open();
  if (const shard::ShardedEngine* se = entry.sharded(); se != nullptr) {
    se->prepare();
    return;
  }
  const PreparedGraph& e = entry.engine();
  e.prepare();
  const Graph& g = e.graph();
  if (g.num_nodes() > 0 && g.num_edges() > 0) (void)e.clique_number_upper_bound();
}

}  // namespace c3
