// End-to-end pipeline: generate -> serialize -> reload -> analyze -> count,
// exactly as a downstream user would drive the library.
#include <gtest/gtest.h>

#include <filesystem>

#include "c3list.hpp"

namespace c3 {
namespace {

TEST(Pipeline, GenerateSerializeAnalyzeCount) {
  const auto dir = std::filesystem::temp_directory_path() / "c3list_pipeline";
  std::filesystem::create_directories(dir);

  const Graph g = social_like(300, 2100, 0.4, 2026);
  write_edge_list(dir / "g.txt", g);
  write_graph_binary(dir / "g.bin", g);

  const Graph from_text = read_graph(dir / "g.txt");
  const Graph from_bin = read_graph_binary(dir / "g.bin");

  const GraphStats stats = compute_stats(g);
  EXPECT_EQ(stats.nodes, 300u);
  EXPECT_GT(stats.triangles, 0u);
  EXPECT_GT(stats.degeneracy, 2u);

  for (int k = 3; k <= 5; ++k) {
    const count_t direct = count_cliques(g, k).count;
    EXPECT_EQ(count_cliques(from_text, k).count, direct) << "text round trip, k=" << k;
    EXPECT_EQ(count_cliques(from_bin, k).count, direct) << "binary round trip, k=" << k;
  }

  std::filesystem::remove_all(dir);
}

TEST(Pipeline, FullAnalysisChain) {
  const Graph g = planted_clique(250, 600, 10, 31, nullptr);

  // Clique number via the search API and via Bron-Kerbosch agree.
  const node_t omega = max_clique_size(g);
  EXPECT_EQ(omega, max_clique_size_bk(g));
  EXPECT_EQ(omega, 10u);

  // The densest 4-clique subgraph has at least the planted core's density
  // over the approximation factor.
  const DensestResult densest = kclique_densest_peeling(g, 4);
  EXPECT_GT(densest.density, 0.0);

  // Maximal cliques include at least one of size omega.
  node_t largest_maximal = 0;
  (void)list_maximal_cliques(g, [&](std::span<const node_t> c) {
    largest_maximal = std::max(largest_maximal, static_cast<node_t>(c.size()));
    return true;
  });
  EXPECT_EQ(largest_maximal, omega);
}

TEST(Pipeline, CommunityDegeneracySigmaGuidesAlgorithmChoice) {
  // On a sigma << s graph, Algorithm 3's candidate sets (bounded by sigma)
  // are far smaller than the communities under the degeneracy orientation.
  const Graph g = bipartite_plus_line(24);
  const node_t s = degeneracy_order(g).degeneracy;
  const node_t sigma = community_degeneracy(g);
  EXPECT_LT(sigma + 5, s);

  CliqueOptions cd;
  cd.algorithm = Algorithm::C3ListCD;
  const CliqueResult r_cd = count_cliques(g, 3, cd);
  const CliqueResult r_c3 = count_cliques(g, 3);
  EXPECT_EQ(r_cd.count, r_c3.count);
  EXPECT_LE(r_cd.stats.gamma, sigma);
}

}  // namespace
}  // namespace c3
