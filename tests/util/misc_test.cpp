// Tests for RunStats, Table formatting, and the CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/run_stats.hpp"
#include "util/table.hpp"

namespace c3 {
namespace {

TEST(RunStats, KnownMeanAndStddev) {
  RunStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.rel_stddev(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
}

TEST(RunStats, EmptyAndSingle) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(Table, AlignsAndRules) {
  Table t({"k", "time"});
  t.add_row({"6", "0.81"});
  t.add_row({"10", "28.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find(" k"), std::string::npos);
  EXPECT_NE(out.find("28.1"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, StrfmtAndCommas) {
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(117185083), "117,185,083");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--n", "100", "--eps=0.5", "--verbose", "--name", "orkut"};
  CommandLine cli(7, argv);
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(cli.has_flag("verbose"));
  EXPECT_FALSE(cli.has_flag("quiet"));
  EXPECT_EQ(cli.get_string("name", ""), "orkut");
  EXPECT_EQ(cli.get_int("missing", -7), -7);
}

TEST(Cli, EmptyArgvUsesFallbacks) {
  const char* argv[] = {"prog"};
  CommandLine cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_FALSE(cli.has_flag("x"));
}

}  // namespace
}  // namespace c3
