// Observability bench — the perf + correctness gate for the PR 9 telemetry
// layer. Three checks in one binary:
//
//   1. Overhead: the same query mix through a LineFrontEnd (no cache, so
//      every request executes) with telemetry ON (tracing + histograms +
//      counters) vs OFF (obs::set_enabled(false), what C3_OBS=off gives a
//      server). Min-of-reps wall time each; the instrumented hot path must
//      stay within --max-overhead-pct (default 2%) of the dark one.
//   2. Exposition validity: the `metrics` text is line-checked against the
//      Prometheus text format (TYPE comments, `name{labels} value` samples,
//      parseable values, the final "# EOF").
//   3. Monotonicity: every `*_total` counter series present in a first
//      scrape must be >= in a second scrape taken after more traffic.
//
// Any failed check is a non-zero exit. Results go to a JSON report:
//
//   ./bench_obs [--out BENCH_pr9.json] [--reps 5] [--max-overhead-pct 2]
//
// Schema: {"bench", "workers", "graphs": [{"name", n, m}], "requests",
// "inner", "reps", "on_seconds", "off_seconds", "overhead_pct",
// "max_overhead_pct", "scrape_series", "scrape_bytes", "trace_bytes"}
// ("requests" is one trip through the mix; each timed pass runs it "inner"
// times so the measurement window is long enough to resolve the budget.)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "datasets.hpp"
#include "net/frontend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

std::vector<std::string> make_request_mix(const std::vector<std::string>& ids) {
  std::vector<std::string> requests;
  for (const std::string& id : ids) {
    for (int k = 3; k <= 6; ++k) requests.push_back(id + " count " + std::to_string(k));
    for (int k = 3; k <= 5; ++k) requests.push_back(id + " hasclique " + std::to_string(k));
    requests.push_back(id + " spectrum 6");
  }
  return requests;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != ':') return false;
  }
  return true;
}

/// Line-checks a Prometheus text exposition. Returns the number of sample
/// lines, or -1 (with a message on stderr) when a line is malformed.
long validate_exposition(const std::string& text) {
  long samples = 0;
  bool saw_eof = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      std::fprintf(stderr, "bench_obs: exposition has an unterminated last line\n");
      return -1;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (saw_eof) {
      std::fprintf(stderr, "bench_obs: content after # EOF: '%s'\n", line.c_str());
      return -1;
    }
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      // "# TYPE <name> <counter|gauge|summary|histogram|untyped>"
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos || !valid_metric_name(rest.substr(0, space))) {
        std::fprintf(stderr, "bench_obs: bad TYPE line: '%s'\n", line.c_str());
        return -1;
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;  // other comments
    // Sample: name[{labels}] value
    std::string name, labels;
    std::size_t value_start;
    const std::size_t brace = line.find('{');
    if (brace != std::string::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos || close + 1 >= line.size() || line[close + 1] != ' ') {
        std::fprintf(stderr, "bench_obs: bad label block: '%s'\n", line.c_str());
        return -1;
      }
      name = line.substr(0, brace);
      labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 2;
      // Labels: key="value" pairs, comma-separated, quotes balanced.
      if (labels.empty() || std::count(labels.begin(), labels.end(), '"') % 2 != 0 ||
          labels.find('=') == std::string::npos) {
        std::fprintf(stderr, "bench_obs: bad labels: '%s'\n", line.c_str());
        return -1;
      }
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        std::fprintf(stderr, "bench_obs: sample without value: '%s'\n", line.c_str());
        return -1;
      }
      name = line.substr(0, space);
      value_start = space + 1;
    }
    if (!valid_metric_name(name)) {
      std::fprintf(stderr, "bench_obs: bad metric name: '%s'\n", line.c_str());
      return -1;
    }
    char* end = nullptr;
    const std::string value = line.substr(value_start);
    (void)std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "bench_obs: unparseable value: '%s'\n", line.c_str());
      return -1;
    }
    ++samples;
  }
  if (!saw_eof) {
    std::fprintf(stderr, "bench_obs: exposition missing # EOF terminator\n");
    return -1;
  }
  return samples;
}

/// Every `<name>_total{labels}` sample, keyed by its full series string.
std::map<std::string, double> counter_samples(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string series = line.substr(0, space);
    const std::size_t name_end = std::min(series.find('{'), series.size());
    if (series.compare(name_end >= 6 ? name_end - 6 : 0, 6, "_total") != 0) continue;
    out[series] = std::strtod(line.c_str() + space + 1, nullptr);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 5));
  const double max_overhead_pct = cli.get_double("max-overhead-pct", 2.0);
  const std::string out_path = cli.get_string("out", "BENCH_pr9.json");

  std::vector<bench::SmokeGraph> smoke = bench::smoke_graphs();
  CliqueOptions opts;
  opts.algorithm = Algorithm::C3List;
  CliqueService service;
  std::vector<std::string> ids;
  for (bench::SmokeGraph& g : smoke) {
    service.add_graph(g.name, std::move(g.graph), opts);
    ids.push_back(g.name);
  }
  for (const std::string& id : ids) service.prepare(id);

  const std::vector<std::string> requests = make_request_mix(ids);
  // No answer cache: every request must reach the engine, otherwise the
  // overhead measurement would mostly time cache probes.
  net::LineFrontEnd frontend(service, nullptr);

  // Warmup: also fills the trace ring and stage histograms so the scrape
  // checks below see a fully populated registry.
  obs::set_enabled(true);
  for (const std::string& r : requests) {
    const auto reply = frontend.process(r);
    if (reply.line.rfind("error: ", 0) == 0) {
      std::fprintf(stderr, "bench_obs: request '%s' failed: %s\n", r.c_str(),
                   reply.line.c_str());
      return 1;
    }
  }

  // ---- 1. overhead: telemetry ON vs OFF, interleaved, min-of-reps --------
  // One trip through the mix is a few milliseconds — far too short to
  // resolve a 2% delta against scheduler jitter on a shared core. Calibrate
  // an inner repeat count so each timed pass runs for at least ~50ms.
  const auto mix_once = [&] {
    for (const std::string& r : requests) (void)frontend.process(r);
  };
  const WallTimer calibrate_timer;
  mix_once();
  const double mix_seconds = calibrate_timer.seconds();
  const int inner = static_cast<int>(std::clamp(
      mix_seconds > 0.0 ? 0.05 / mix_seconds : 64.0, 1.0, 64.0));
  const auto pass = [&] {
    const WallTimer timer;
    for (int i = 0; i < inner; ++i) mix_once();
    return timer.seconds();
  };
  double on_best = 0.0, off_best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave the modes so slow drift (thermal, page cache) hits both.
    obs::set_enabled(true);
    const double on = pass();
    obs::set_enabled(false);
    const double off = pass();
    obs::set_enabled(true);
    on_best = rep == 0 ? on : std::min(on_best, on);
    off_best = rep == 0 ? off : std::min(off_best, off);
  }
  const double overhead_pct =
      off_best > 0.0 ? (on_best - off_best) / off_best * 100.0 : 0.0;

  // ---- 2. exposition validity -------------------------------------------
  const std::string scrape1 = frontend.process("metrics").line + "\n";
  const long series = validate_exposition(scrape1);
  if (series < 0) return 1;

  // ---- 3. counter monotonicity across scrapes ---------------------------
  for (const std::string& r : requests) (void)frontend.process(r);
  const std::string scrape2 = frontend.process("metrics").line + "\n";
  if (validate_exposition(scrape2) < 0) return 1;
  const std::map<std::string, double> before = counter_samples(scrape1);
  const std::map<std::string, double> after = counter_samples(scrape2);
  int regressions = 0;
  for (const auto& [key, value] : before) {
    const auto it = after.find(key);
    if (it == after.end()) {
      std::fprintf(stderr, "bench_obs: counter series vanished: %s\n", key.c_str());
      ++regressions;
    } else if (it->second < value) {
      std::fprintf(stderr, "bench_obs: counter went backwards: %s (%g -> %g)\n", key.c_str(),
                   value, it->second);
      ++regressions;
    }
  }
  // Sanity: the serving counters must actually be in the scrape. (The full
  // key includes the instance label, so probe by prefix.)
  bool found_requests = false;
  for (const auto& [key, value] : before) {
    if (key.rfind("c3_requests_total{", 0) == 0) found_requests = true;
  }
  if (!found_requests) {
    std::fprintf(stderr, "bench_obs: c3_requests_total missing from the scrape\n");
    ++regressions;
  }

  // The trace export must be one line of JSON with events in it.
  const std::string trace_json = frontend.process("trace").line;
  if (trace_json.rfind("{\"traceEvents\":[", 0) != 0 ||
      trace_json.find("\"ph\":\"X\"") == std::string::npos ||
      trace_json.find('\n') != std::string::npos) {
    std::fprintf(stderr, "bench_obs: trace export is not a one-line chrome trace\n");
    ++regressions;
  }

  const std::size_t per_pass = requests.size() * static_cast<std::size_t>(inner);
  Table t({"mode", "requests", "seconds"});
  t.add_row({"telemetry on", std::to_string(per_pass), strfmt("%.4f", on_best)});
  t.add_row({"telemetry off", std::to_string(per_pass), strfmt("%.4f", off_best)});
  t.print();
  std::printf("overhead %.2f%% (budget %.1f%%), %ld series, scrape %zu bytes\n", overhead_pct,
              max_overhead_pct, series, scrape1.size());

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_obs: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"obs\", \"workers\": %d, \"graphs\": [", num_workers());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Graph& g = service.engine(ids[i]).graph();
    std::fprintf(json, "%s{\"name\": \"%s\", \"n\": %u, \"m\": %llu}", i > 0 ? ", " : "",
                 ids[i].c_str(), g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));
  }
  std::fprintf(json,
               "], \"requests\": %zu, \"inner\": %d, \"reps\": %d, \"on_seconds\": %.6f, "
               "\"off_seconds\": %.6f, \"overhead_pct\": %.3f, \"max_overhead_pct\": %.1f, "
               "\"scrape_series\": %ld, \"scrape_bytes\": %zu, \"trace_bytes\": %zu}\n",
               requests.size(), inner, reps, on_best, off_best, overhead_pct, max_overhead_pct,
               series,
               scrape1.size(), trace_json.size());
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());

  if (regressions != 0) {
    std::fprintf(stderr, "bench_obs: scrape checks FAILED (%d problems)\n", regressions);
    return 1;
  }
  if (overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "bench_obs: overhead %.2f%% exceeds the %.1f%% budget\n", overhead_pct,
                 max_overhead_pct);
    return 1;
  }
  return 0;
}
