// c3tool — command-line front end for the library.
//
//   c3tool gen      --kind social --n 10000 --m 80000 --seed 1 --out g.txt
//   c3tool stats    --in g.txt
//   c3tool prepare  --in g.txt --out g.c3snap [--alg A]   (build the engine's
//                   artifacts offline and serialize them into a snapshot)
//   c3tool inspect  --in g.c3snap   (header, options fingerprint, artifact
//                   mask, section table — without loading any artifact;
//                   sharded manifests get the per-shard directory view)
//   c3tool shard    --in g.txt --out g.c3shard --shards 4 [--policy edge]
//                   (partition, prepare every shard, write one sharded
//                   manifest servable as a single catalog entry)
//   c3tool count    --in g.txt --k 7 [--alg c3list|cd|hybrid|kclist|arbcount]
//   c3tool sweep    --in g.txt [--kmin 3 --kmax 0] [--alg A]   (prepare once,
//                   query every k; kmax 0 = up to the clique number)
//   c3tool maxclique --in g.txt
//   c3tool batch    --in g.txt --queries q.txt [--alg A] [--concurrency N]
//                   (prepare once, run a query file through QueryBatch; the
//                   file holds one typed query per line — parse_query's
//                   grammar, including per-query workers=/limit=/budget=)
//   c3tool trace    --in g.txt --query 'count 5' --out trace.json   (run with
//                   tracing on and dump chrome://tracing JSON; --connect
//                   HOST:PORT fetches a live server's trace ring instead)
//   c3tool convert  --in g.txt --out g.metis
//
// count/sweep/maxclique/batch accept --snapshot g.c3snap in place of --in:
// the engine is mmap-loaded from the snapshot (no preparation at startup);
// --alg, if also given, must match the snapshot's fingerprint. Snapshot
// warm-up hints: --prefault (read the file ahead) and --mlock (pin it in
// RAM, best-effort).
//
// Input format is chosen by extension (.txt/.mtx/.metis/.graph/.bin/
// .c3snap); see graph/io.hpp. Generators: social, collab, topo, mesh,
// spectral, rating, bio, er, rmat, ba, hypercube, complete.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "c3list.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace c3;

Graph generate(const CommandLine& cli) {
  const std::string kind = cli.get_string("kind", "social");
  const auto n = static_cast<node_t>(cli.get_int("n", 10'000));
  const auto m = static_cast<edge_t>(cli.get_int("m", 8 * static_cast<long long>(n)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (kind == "social") return social_like(n, m, cli.get_double("closure", 0.4), seed);
  if (kind == "collab")
    return collaboration_like(n, static_cast<count_t>(cli.get_int("papers", n / 2)),
                              static_cast<node_t>(cli.get_int("team", 16)), seed);
  if (kind == "topo")
    return topology_like(n, static_cast<node_t>(cli.get_int("attach", 3)),
                         cli.get_double("closure", 0.5), seed);
  if (kind == "mesh") return mesh_like(n, static_cast<node_t>(cli.get_int("knn", 16)), seed);
  if (kind == "spectral")
    return spectral_like(n, static_cast<node_t>(cli.get_int("band", 8)),
                         static_cast<node_t>(cli.get_int("window", 24)),
                         static_cast<node_t>(cli.get_int("stride", 12)), seed);
  if (kind == "rating")
    return rating_projection(n, static_cast<node_t>(cli.get_int("items", 120)),
                             static_cast<node_t>(cli.get_int("ratings", 8)), seed);
  if (kind == "bio")
    return bio_like(n, m, static_cast<node_t>(cli.get_int("modules", 60)),
                    static_cast<node_t>(cli.get_int("module_size", 22)),
                    cli.get_double("density", 0.7), seed);
  if (kind == "er") return erdos_renyi(n, m, seed);
  if (kind == "rmat") return rmat(n, m, 0.57, 0.19, 0.19, seed);
  if (kind == "ba") return barabasi_albert(n, static_cast<node_t>(cli.get_int("attach", 3)), seed);
  if (kind == "hypercube") return hypercube(static_cast<node_t>(cli.get_int("dim", 10)));
  if (kind == "complete") return complete_graph(n);
  std::fprintf(stderr, "c3tool: unknown generator kind '%s'\n", kind.c_str());
  std::exit(2);
}

void write_any(const Graph& g, const std::string& out) {
  if (out.size() >= 4 && out.substr(out.size() - 4) == ".bin") {
    write_graph_binary(out, g);
  } else if (out.size() >= 6 && out.substr(out.size() - 6) == ".metis") {
    write_graph_metis(out, g);
  } else {
    write_edge_list(out, g);
  }
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "c3list") return Algorithm::C3List;
  if (name == "cd") return Algorithm::C3ListCD;
  if (name == "hybrid") return Algorithm::Hybrid;
  if (name == "kclist") return Algorithm::KCList;
  if (name == "arbcount") return Algorithm::ArbCount;
  if (name == "brute") return Algorithm::BruteForce;
  std::fprintf(stderr, "c3tool: unknown algorithm '%s'\n", name.c_str());
  std::exit(2);
}

CliqueOptions options_from_cli(const CommandLine& cli) {
  CliqueOptions opts;
  opts.algorithm = parse_algorithm(cli.get_string("alg", "c3list"));
  opts.triangle_growth = cli.has_flag("triangle-growth");
  if (cli.has_flag("no-prune")) opts.distance_pruning = false;
  return opts;
}

/// Opens a snapshot for serving. The artifact fingerprint comes from the
/// file; an explicit --alg must agree with it, and the runtime-only flags
/// (--triangle-growth / --no-prune) apply on top without re-preparing.
/// --prefault / --mlock pass the warm-up hints through.
snapshot::Snapshot open_snapshot(const CommandLine& cli, const std::string& path) {
  snapshot::SnapshotOpenOptions open_opts;
  open_opts.prefault = cli.has_flag("prefault");
  open_opts.lock_memory = cli.has_flag("mlock");
  const auto alg = cli.get("alg");
  const bool triangle_growth = cli.has_flag("triangle-growth");
  const bool no_prune = cli.has_flag("no-prune");
  // The common invocation adopts the snapshot's stored options wholesale —
  // one open, one validation pass.
  if (!alg.has_value() && !triangle_growth && !no_prune) {
    return snapshot::Snapshot::open(path, open_opts);
  }
  CliqueOptions expected = snapshot::inspect(path).options;
  if (alg.has_value()) expected.algorithm = parse_algorithm(*alg);
  if (triangle_growth) expected.triangle_growth = true;
  if (no_prune) expected.distance_pruning = false;
  return snapshot::Snapshot::open(path, expected, open_opts);
}

/// The engine a serving command runs on: mmap-loaded from --snapshot
/// (already prepared, O(1) startup) or built in-process from --in. Heap
/// members so the PreparedGraph's graph reference stays stable across moves.
struct EngineSource {
  std::optional<snapshot::Snapshot> snap;
  std::unique_ptr<Graph> graph;          // --in mode only
  std::unique_ptr<PreparedGraph> local;  // --in mode only
  double load_seconds = 0.0;

  [[nodiscard]] const PreparedGraph& engine() const {
    return snap.has_value() ? snap->engine() : *local;
  }
  [[nodiscard]] bool from_snapshot() const { return snap.has_value(); }
};

EngineSource make_engine(const CommandLine& cli) {
  EngineSource src;
  WallTimer timer;
  if (const auto path = cli.get("snapshot")) {
    src.snap.emplace(open_snapshot(cli, *path));
    if (cli.has_flag("mlock") && !src.snap->memory_locked()) {
      std::fprintf(stderr,
                   "c3tool: warning: mlock refused (RLIMIT_MEMLOCK?) — serving unpinned\n");
    }
  } else {
    src.graph = std::make_unique<Graph>(read_graph_any(cli.get_string("in", "graph.txt")));
    src.local = std::make_unique<PreparedGraph>(*src.graph, options_from_cli(cli));
  }
  src.load_seconds = timer.seconds();
  return src;
}

int cmd_gen(const CommandLine& cli) {
  const Graph g = generate(cli);
  const std::string out = cli.get_string("out", "graph.txt");
  write_any(g, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_stats(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const GraphStats s = compute_stats(g);
  const node_t sigma = community_degeneracy(g);
  Table t({"|V|", "|E|", "|T|", "s", "sigma", "maxdeg", "E/V", "T/V", "T/E"});
  t.add_row({with_commas(s.nodes), with_commas(s.edges), with_commas(s.triangles),
             std::to_string(s.degeneracy), std::to_string(sigma), std::to_string(s.max_degree),
             strfmt("%.2f", s.edges_per_node), strfmt("%.2f", s.triangles_per_node),
             strfmt("%.2f", s.triangles_per_edge)});
  t.print();
  return 0;
}

int cmd_prepare(const CommandLine& cli) {
  const std::string in = cli.get_string("in", "graph.txt");
  const std::string out = cli.get_string("out", "graph.c3snap");
  const Graph g = read_graph_any(in);
  const CliqueOptions opts = options_from_cli(cli);
  const PreparedGraph engine(g, opts);
  WallTimer timer;
  snapshot::write(out, engine);  // forces preparation, then serializes
  const double total = timer.seconds();
  const snapshot::SnapshotInfo info = snapshot::inspect(out);
  std::printf("prepared %s with %s in %.3f s (prepare %.3f s, %d artifacts)\n", in.c_str(),
              algorithm_name(opts.algorithm), total, engine.prepare_seconds(),
              engine.artifacts_built());
  Table t({"section", "offset", "bytes", "elements"});
  for (const snapshot::SectionInfo& s : info.sections) {
    t.add_row({s.name, std::to_string(s.offset), with_commas(s.bytes), with_commas(s.count)});
  }
  t.print();
  std::printf("wrote %s: %s bytes, %u vertices, %llu edges\n", out.c_str(),
              with_commas(info.file_bytes).c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_count(const CommandLine& cli) {
  const EngineSource src = make_engine(cli);
  const PreparedGraph& engine = src.engine();
  const int k = static_cast<int>(cli.get_int("k", 5));
  WallTimer timer;
  const CliqueResult r = engine.count(k);
  std::printf("%llu %d-cliques in %.3f s (%s%s; prep %.3f s, gamma %u)\n",
              static_cast<unsigned long long>(r.count), k, timer.seconds(),
              algorithm_name(engine.options().algorithm),
              src.from_snapshot() ? ", snapshot" : "", r.stats.preprocess_seconds, r.stats.gamma);
  return 0;
}

int cmd_sweep(const CommandLine& cli) {
  const EngineSource src = make_engine(cli);
  const PreparedGraph& engine = src.engine();
  const int kmin = static_cast<int>(cli.get_int("kmin", 3));
  const int kmax = static_cast<int>(cli.get_int("kmax", 0));

  // Prepare once (a no-op for a snapshot-loaded engine); every query below
  // reuses the artifacts (its stats report zero preprocess seconds).
  WallTimer prep_timer;
  engine.prepare();
  const int hi = kmax > 0 ? kmax : static_cast<int>(engine.clique_number_upper_bound());
  std::printf("%s %s in %.3f s (omega <= %d)\n", algorithm_name(engine.options().algorithm),
              src.from_snapshot() ? "snapshot-loaded" : "prepared",
              src.from_snapshot() ? src.load_seconds : prep_timer.seconds(),
              static_cast<int>(engine.clique_number_upper_bound()));

  Table t({"k", "#cliques", "search[s]"});
  for (int k = kmin; k <= hi; ++k) {
    const CliqueResult r = engine.count(k);
    t.add_row({std::to_string(k), with_commas(r.count), strfmt("%.3f", r.stats.search_seconds)});
    if (r.count == 0 && k >= 3) break;  // past the clique number
  }
  t.print();
  return 0;
}

int cmd_batch(const CommandLine& cli) {
  const EngineSource src = make_engine(cli);
  const PreparedGraph& engine = src.engine();
  const std::string queries_path = cli.get_string("queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "c3tool batch: --queries FILE is required\n");
    return 2;
  }
  std::ifstream in(queries_path);
  if (!in) {
    std::fprintf(stderr, "c3tool batch: cannot read %s\n", queries_path.c_str());
    return 2;
  }
  // One grammar for files, tools, and servers: parse_query (query.hpp). A
  // malformed line is a hard error naming the offending token — a typo must
  // not degrade into a different (possibly far more expensive) query.
  QueryBatch batch(engine);
  try {
    for (Query& q : parse_query_file(in)) (void)batch.add(std::move(q));
  } catch (const QueryParseError& e) {
    std::fprintf(stderr, "c3tool batch: %s: %s\n", queries_path.c_str(), e.what());
    return 2;
  }
  if (batch.size() == 0) {
    std::fprintf(stderr, "c3tool batch: %s holds no queries\n", queries_path.c_str());
    return 2;
  }

  WallTimer prep_timer;
  engine.prepare();
  const double prep = prep_timer.seconds();
  WallTimer batch_timer;
  const std::vector<Answer> answers =
      batch.answers(static_cast<int>(cli.get_int("concurrency", 0)));
  const double total = batch_timer.seconds();

  Table t({"#", "query", "answer", "time[s]"});
  for (std::size_t i = 0; i < answers.size(); ++i) {
    t.add_row({std::to_string(i), format_query(batch.queries()[i]),
               format_answer(answers[i]), strfmt("%.3f", answers[i].seconds)});
  }
  t.print();
  std::printf("%zu queries in %.3f s wall (prepare %.3f s, %s%s)\n", answers.size(), total, prep,
              algorithm_name(engine.options().algorithm),
              src.from_snapshot() ? ", snapshot" : "");
  return 0;
}

shard::PartitionPolicy parse_policy(const std::string& name) {
  if (name == "vertex") return shard::PartitionPolicy::VertexRange;
  if (name == "edge") return shard::PartitionPolicy::EdgeBlock;
  std::fprintf(stderr, "c3tool: unknown partition policy '%s' (want vertex|edge)\n", name.c_str());
  std::exit(2);
}

int cmd_shard(const CommandLine& cli) {
  const std::string in = cli.get_string("in", "graph.txt");
  const std::string out = cli.get_string("out", "graph.c3shard");
  shard::ShardingOptions sharding;
  sharding.shards = static_cast<int>(cli.get_int("shards", 2));
  sharding.policy = parse_policy(cli.get_string("policy", "edge"));
  const Graph g = read_graph_any(in);
  const CliqueOptions opts = options_from_cli(cli);
  WallTimer timer;
  const shard::ShardedEngine engine(g, sharding, opts);
  snapshot::write_sharded(out, engine);  // forces preparation of every shard
  const double total = timer.seconds();
  const snapshot::ShardManifestInfo info = snapshot::inspect_sharded(out);
  std::printf("sharded %s into %zu %s shards with %s in %.3f s\n", in.c_str(),
              engine.num_shards(), shard::partition_policy_name(sharding.policy),
              algorithm_name(opts.algorithm), total);
  Table t({"shard", "owned", "halo", "|V_s|", "|E_s|", "image[B]", "halo image[B]"});
  for (std::size_t i = 0; i < info.shards.size(); ++i) {
    const snapshot::ShardSectionInfo& s = info.shards[i];
    t.add_row({std::to_string(i),
               strfmt("[%llu, %llu)", static_cast<unsigned long long>(s.first_owned),
                      static_cast<unsigned long long>(s.first_owned + s.owned_count)),
               with_commas(s.halo_count), with_commas(s.num_nodes), with_commas(s.num_edges),
               with_commas(s.snap_bytes), with_commas(s.halo_snap_bytes)});
  }
  t.print();
  std::printf("wrote %s: %s bytes, %u vertices, %llu edges\n", out.c_str(),
              with_commas(info.file_bytes).c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_inspect_sharded(const std::string& in) {
  const snapshot::ShardManifestInfo info = snapshot::inspect_sharded(in);
  const CliqueOptions& o = info.options;
  std::printf("%s: c3 sharded manifest v%u, %s bytes, %zu %s shards\n", in.c_str(),
              info.format_version, with_commas(info.file_bytes).c_str(), info.shards.size(),
              shard::partition_policy_name(info.policy));
  std::printf("graph: %s vertices, %s edges\n", with_commas(info.num_nodes).c_str(),
              with_commas(info.num_edges).c_str());
  std::printf("fingerprint: alg %s, vertex order %d, edge order %d, eps %g, seed %llu%s%s\n",
              algorithm_name(o.algorithm), static_cast<int>(o.vertex_order),
              static_cast<int>(o.edge_order), o.eps,
              static_cast<unsigned long long>(o.order_seed),
              o.distance_pruning ? "" : ", no-prune", o.triangle_growth ? ", triangle-growth" : "");
  Table t({"shard", "owned", "halo", "|V_s|", "|E_s|", "image offset", "image[B]", "fingerprint"});
  for (std::size_t i = 0; i < info.shards.size(); ++i) {
    const snapshot::ShardSectionInfo& s = info.shards[i];
    t.add_row({std::to_string(i),
               strfmt("[%llu, %llu)", static_cast<unsigned long long>(s.first_owned),
                      static_cast<unsigned long long>(s.first_owned + s.owned_count)),
               with_commas(s.halo_count), with_commas(s.num_nodes), with_commas(s.num_edges),
               std::to_string(s.snap_offset), with_commas(s.snap_bytes),
               strfmt("0x%016llx", static_cast<unsigned long long>(s.snap_fingerprint))});
  }
  t.print();
  return 0;
}

int cmd_inspect(const CommandLine& cli) {
  const std::string in = cli.get_string("in", "graph.c3snap");
  if (snapshot::is_shard_manifest(in)) return cmd_inspect_sharded(in);
  const snapshot::SnapshotInfo info = snapshot::inspect(in);
  const CliqueOptions& o = info.options;
  std::printf("%s: c3 snapshot v%u (artifact schema %u), %s bytes\n", in.c_str(),
              info.format_version, info.artifact_schema, with_commas(info.file_bytes).c_str());
  std::printf("graph: %s vertices, %s edges\n", with_commas(info.num_nodes).c_str(),
              with_commas(info.num_edges).c_str());
  std::printf("fingerprint: alg %s, vertex order %d, edge order %d, eps %g, seed %llu%s%s\n",
              algorithm_name(o.algorithm), static_cast<int>(o.vertex_order),
              static_cast<int>(o.edge_order), o.eps,
              static_cast<unsigned long long>(o.order_seed),
              o.distance_pruning ? "" : ", no-prune", o.triangle_growth ? ", triangle-growth" : "");
  std::string artifacts;
  if (info.has(snapshot::kArtifactDag)) artifacts += " dag";
  if (info.has(snapshot::kArtifactCommunities)) artifacts += " communities";
  if (info.has(snapshot::kArtifactEdgeOrder)) artifacts += " edge-order";
  if (info.has(snapshot::kArtifactExactDegeneracy)) artifacts += " exact-degeneracy";
  std::printf("artifacts (mask 0x%x):%s\n", info.artifact_mask,
              artifacts.empty() ? " none" : artifacts.c_str());
  std::printf("kernel: %s (best on this host: %s)\n",
              bits::kernel_backend_name(bits::active_kernel_backend()),
              bits::kernel_backend_name(bits::best_kernel_backend()));
  Table t({"section", "offset", "bytes", "elements", "checksum"});
  for (const snapshot::SectionInfo& s : info.sections) {
    t.add_row({s.name, std::to_string(s.offset), with_commas(s.bytes), with_commas(s.count),
               strfmt("0x%016llx", static_cast<unsigned long long>(s.checksum))});
  }
  t.print();
  return 0;
}

int cmd_maxclique(const CommandLine& cli) {
  const EngineSource src = make_engine(cli);
  WallTimer timer;
  const auto witness = src.engine().max_clique();
  std::printf("omega = %zu (%.3f s); witness:", witness.size(), timer.seconds());
  for (const node_t v : witness) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

/// `c3tool trace` — dump query-lifecycle traces as chrome://tracing JSON
/// (load the file at chrome://tracing or https://ui.perfetto.dev).
///
/// Local mode: run --query (or a --queries file) against --in/--snapshot
/// with tracing forced on, then dump the trace ring. Connect mode
/// (--connect HOST:PORT): fetch a running server's ring via the `trace`
/// admin word instead.
int cmd_trace(const CommandLine& cli) {
  const std::string out_path = cli.get_string("out", "trace.json");
  std::string json;
  if (const auto connect = cli.get("connect")) {
    const std::size_t colon = connect->rfind(':');
    if (colon == std::string::npos || colon + 1 == connect->size()) {
      std::fprintf(stderr, "c3tool trace: bad --connect '%s' (want HOST:PORT)\n",
                   connect->c_str());
      return 2;
    }
    const std::string host = connect->substr(0, colon);
    const auto port = static_cast<std::uint16_t>(std::stoul(connect->substr(colon + 1)));
    // The whole ring arrives as one JSON line; give it generous headroom.
    net::LineClient client(host, port, 10.0, std::size_t{64} << 20);
    json = client.request("trace");
  } else {
    obs::set_enabled(true);  // --in mode forces tracing even under C3_OBS=off
    obs::TraceRing::global().clear();
    const EngineSource src = make_engine(cli);
    const PreparedGraph& engine = src.engine();
    const std::string graph_id = cli.get_string("snapshot", cli.get_string("in", "graph.txt"));

    std::vector<Query> queries;
    try {
      if (const auto queries_path = cli.get("queries")) {
        std::ifstream in(*queries_path);
        if (!in) {
          std::fprintf(stderr, "c3tool trace: cannot read %s\n", queries_path->c_str());
          return 2;
        }
        queries = parse_query_file(in);
      } else {
        queries.push_back(parse_query(cli.get_string("query", "count 5")));
      }
    } catch (const QueryParseError& e) {
      std::fprintf(stderr, "c3tool trace: %s\n", e.what());
      return 2;
    }

    for (const Query& q : queries) {
      auto trace = std::make_unique<obs::TraceContext>(graph_id, format_query(q));
      const Answer answer = engine.run(q, trace.get());
      trace.reset();  // publish into the ring
      std::printf("%s -> %s\n", format_query(q).c_str(), format_answer(answer).c_str());
    }
    json = obs::chrome_trace_json(obs::TraceRing::global().snapshot());
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "c3tool trace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json << '\n';
  out.close();
  std::printf("wrote %s (%zu bytes) — load at chrome://tracing\n", out_path.c_str(),
              json.size() + 1);
  return 0;
}

int cmd_convert(const CommandLine& cli) {
  const Graph g = read_graph_any(cli.get_string("in", "graph.txt"));
  const std::string out = cli.get_string("out", "graph.bin");
  write_any(g, out);
  std::printf("converted to %s (%u vertices, %llu edges)\n", out.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

void usage() {
  std::puts(
      "usage: c3tool <gen|stats|prepare|shard|inspect|count|sweep|maxclique|batch|trace"
      "|convert> [--flags]\n"
      "  gen       --kind K --n N [--m M --seed S] --out FILE\n"
      "  stats     --in FILE\n"
      "  prepare   --in FILE --out FILE.c3snap [--alg A]  (build artifacts offline,\n"
      "            serialize graph + prepared engine into an mmap-able snapshot)\n"
      "  shard     --in FILE --out FILE.c3shard [--shards 2] [--policy vertex|edge]\n"
      "            [--alg A]  (partition into vertex-ownership shards, prepare each,\n"
      "            write one sharded manifest — one catalog entry, N engines)\n"
      "  inspect   --in FILE.c3snap  (header, fingerprint, artifact mask, sections\n"
      "            — validates the header without loading any artifact; a sharded\n"
      "            manifest prints its per-shard directory instead)\n"
      "  count     --in FILE --k K [--alg A] [--triangle-growth] [--no-prune]\n"
      "  sweep     --in FILE [--kmin 3] [--kmax 0] [--alg A]  (prepare once, all k)\n"
      "  maxclique --in FILE\n"
      "  batch     --in FILE --queries FILE [--alg A] [--concurrency N]\n"
      "            query file lines: count K | list K | hasclique K | findclique K |\n"
      "            vertexcounts K | edgecounts K | spectrum [KMAX] | maxclique,\n"
      "            each optionally followed by workers=N limit=N budget=SECONDS\n"
      "            witness=0|1 (per-query worker caps, result limits, deadlines)\n"
      "  trace     --in FILE [--query 'count 5' | --queries FILE] [--out trace.json]\n"
      "            or --connect HOST:PORT — dump query-lifecycle stage spans as\n"
      "            chrome://tracing JSON (local run, or a server's trace ring)\n"
      "  convert   --in FILE --out FILE\n"
      "\n"
      "count/sweep/maxclique/batch also take --snapshot FILE.c3snap instead of\n"
      "--in: the prepared engine is mmap-loaded (zero preparation at startup);\n"
      "an explicit --alg must match the snapshot's fingerprint. --prefault asks\n"
      "the kernel to read the snapshot ahead; --mlock pins it in RAM\n"
      "(best-effort).\n"
      "\n"
      "graph formats, by extension (read unless noted):\n"
      "  .txt (or anything else)  whitespace edge list; '#'/'%' comments;\n"
      "                           symmetrized + deduplicated (read/write)\n"
      "  .mtx                     MatrixMarket coordinate, pattern symmetrized\n"
      "  .metis | .graph          METIS adjacency; weights skipped (read/write)\n"
      "  .bin                     c3 binary edge list (read/write)\n"
      "  .c3snap                  engine snapshot; reading takes the graph\n"
      "                           section (write via `c3tool prepare`)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const CommandLine cli(argc - 1, argv + 1);
  const std::string command = argv[1];
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "stats") return cmd_stats(cli);
    if (command == "prepare") return cmd_prepare(cli);
    if (command == "shard") return cmd_shard(cli);
    if (command == "inspect") return cmd_inspect(cli);
    if (command == "count") return cmd_count(cli);
    if (command == "sweep") return cmd_sweep(cli);
    if (command == "maxclique") return cmd_maxclique(cli);
    if (command == "batch") return cmd_batch(cli);
    if (command == "trace") return cmd_trace(cli);
    if (command == "convert") return cmd_convert(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "c3tool: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
