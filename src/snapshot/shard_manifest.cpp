#include "snapshot/shard_manifest.hpp"

#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "snapshot/mapped_file.hpp"

namespace c3::snapshot {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path, const std::string& what) {
  throw std::runtime_error("c3::snapshot: " + what + ": " + path.string());
}

std::string u64s(std::uint64_t v) { return std::to_string(v); }

std::filesystem::path shard_label(const std::filesystem::path& path, std::size_t i,
                                  bool halo) {
  return path.string() + "#shard" + std::to_string(i) + (halo ? ".halo" : "");
}

// ------------------------------------------------------------------ writing

/// Section placement cursor: every section lands kSectionAlign-aligned.
struct Cursor {
  std::uint64_t offset;
  std::uint64_t place(std::uint64_t bytes) {
    offset = align_up(offset, kSectionAlign);
    const std::uint64_t at = offset;
    offset += bytes;
    return at;
  }
};

struct PendingShard {
  ShardRecord rec;
  std::string snap;       // serialized main image
  std::string halo_snap;  // serialized halo image ("" when no halo)
};

// ------------------------------------------------------------------ reading

struct ManifestLayout {
  ShardManifestHeader header;
  std::vector<ShardRecord> records;
};

/// Header + record table, validated and copied out of the mapping. Proves
/// the shard ranges tile [0, num_nodes) — the partition property every
/// merged answer rests on — and bounds-checks every section.
ManifestLayout validate_manifest(const MappedFile& map, const std::filesystem::path& path) {
  if (map.size() < sizeof(ShardManifestHeader)) {
    fail(path, "truncated header: file holds " + u64s(map.size()) +
                   " bytes, a shard manifest needs " + u64s(sizeof(ShardManifestHeader)));
  }
  ManifestLayout lay;
  std::memcpy(&lay.header, map.data(), sizeof lay.header);
  const ShardManifestHeader& h = lay.header;
  if (std::memcmp(h.magic, kShardMagic, sizeof kShardMagic) != 0) {
    fail(path, "bad magic at offset 0 (not a c3 shard manifest)");
  }
  if (h.format_version != kShardFormatVersion) {
    fail(path, "manifest format version mismatch: file has v" + u64s(h.format_version) +
                   ", this build reads v" + u64s(kShardFormatVersion));
  }
  if (h.header_bytes != sizeof(ShardManifestHeader)) {
    fail(path, "header size mismatch: file says " + u64s(h.header_bytes) + ", expected " +
                   u64s(sizeof(ShardManifestHeader)));
  }
  if (h.node_bytes != sizeof(node_t) || h.edge_bytes != sizeof(edge_t)) {
    fail(path, "id-width mismatch: manifest written with " + u64s(h.node_bytes) +
                   "-byte node / " + u64s(h.edge_bytes) + "-byte edge ids, this build uses " +
                   u64s(sizeof(node_t)) + "/" + u64s(sizeof(edge_t)));
  }
  if (h.file_bytes != map.size()) {
    fail(path, "truncated or padded file: header records " + u64s(h.file_bytes) +
                   " bytes, file holds " + u64s(map.size()));
  }
  if (h.shard_count == 0) fail(path, "manifest declares zero shards");
  if (h.partition_policy > static_cast<std::uint32_t>(shard::PartitionPolicy::EdgeBlock)) {
    fail(path, "unknown partition policy " + u64s(h.partition_policy));
  }
  const std::uint64_t table_offset = sizeof(ShardManifestHeader);
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(h.shard_count) * sizeof(ShardRecord);
  if (table_bytes > map.size() - table_offset) {
    fail(path, "shard table out of bounds: " + u64s(h.shard_count) + " records at offset " +
                   u64s(table_offset) + " exceed the " + u64s(map.size()) + "-byte file");
  }
  lay.records.resize(h.shard_count);
  std::memcpy(lay.records.data(), map.data() + table_offset, table_bytes);

  ShardManifestHeader unsummed = h;
  unsummed.header_checksum = 0;
  std::uint64_t hc = checksum64(&unsummed, sizeof unsummed);
  hc = checksum64(lay.records.data(), table_bytes, hc);
  if (hc != h.header_checksum) fail(path, "header checksum mismatch");

  std::uint64_t expect = 0;
  const auto check_section = [&](const char* name, std::size_t i, std::uint64_t offset,
                                 std::uint64_t bytes) {
    if (bytes == 0) return;
    if (offset == 0 || offset % kSectionAlign != 0) {
      fail(path, "shard " + u64s(i) + " " + name + ": offset " + u64s(offset) + " is not " +
                     u64s(kSectionAlign) + "-byte aligned");
    }
    if (offset > map.size() || bytes > map.size() - offset) {
      fail(path, "shard " + u64s(i) + " " + name + " out of bounds: offset " + u64s(offset) +
                     " + " + u64s(bytes) + " bytes exceed the " + u64s(map.size()) +
                     "-byte file");
    }
  };
  for (std::size_t i = 0; i < lay.records.size(); ++i) {
    const ShardRecord& r = lay.records[i];
    if (r.first_owned != expect) {
      fail(path, "shard ranges do not tile [0, n): shard " + u64s(i) + " starts at " +
                     u64s(r.first_owned) + ", expected " + u64s(expect));
    }
    expect = r.first_owned + r.owned_count;
    if (r.snap_offset == 0 || r.snap_bytes < sizeof(SnapshotHeader)) {
      fail(path, "shard " + u64s(i) + " has no usable snapshot image");
    }
    check_section("snapshot image", i, r.snap_offset, r.snap_bytes);
    if ((r.halo_snap_offset == 0) != (r.halo_count == 0)) {
      fail(path, "shard " + u64s(i) + ": halo image and halo id count disagree");
    }
    check_section("halo image", i, r.halo_snap_offset, r.halo_snap_bytes);
    check_section("halo ids", i, r.halo_ids_offset, r.halo_count * sizeof(node_t));
    check_section("edge map", i, r.edge_map_offset, r.edge_map_count * sizeof(edge_t));
    check_section("halo edge map", i, r.halo_edge_map_offset,
                  r.halo_edge_map_count * sizeof(edge_t));
  }
  if (expect != h.num_nodes) {
    fail(path, "shard ranges do not cover [0, n): last shard ends at " + u64s(expect) +
                   ", the graph has " + u64s(h.num_nodes) + " vertices");
  }
  return lay;
}

void verify_fingerprints(const MappedFile& map, const std::filesystem::path& path,
                         const ManifestLayout& lay) {
  const auto check = [&](const char* name, std::size_t i, std::uint64_t offset,
                         std::uint64_t bytes, std::uint64_t expected) {
    if (bytes == 0) return;
    if (checksum64(map.data() + offset, bytes) != expected) {
      fail(path, "shard " + u64s(i) + " " + name + " checksum mismatch");
    }
  };
  for (std::size_t i = 0; i < lay.records.size(); ++i) {
    const ShardRecord& r = lay.records[i];
    check("snapshot image", i, r.snap_offset, r.snap_bytes, r.snap_fingerprint);
    check("halo image", i, r.halo_snap_offset, r.halo_snap_bytes, r.halo_snap_fingerprint);
    check("halo ids", i, r.halo_ids_offset, r.halo_count * sizeof(node_t),
          r.halo_ids_checksum);
    check("edge map", i, r.edge_map_offset, r.edge_map_count * sizeof(edge_t),
          r.edge_map_checksum);
    check("halo edge map", i, r.halo_edge_map_offset, r.halo_edge_map_count * sizeof(edge_t),
          r.halo_edge_map_checksum);
  }
}

template <typename T>
std::span<const T> array_span(const MappedFile& map, std::uint64_t offset,
                              std::uint64_t count) {
  if (count == 0) return {};
  return {reinterpret_cast<const T*>(map.data() + offset), static_cast<std::size_t>(count)};
}

/// The embedded image's validated-enough header: magic and size are checked
/// here, everything else by Snapshot::open_buffer when the image is opened.
SnapshotHeader image_header(const MappedFile& map, const std::filesystem::path& path,
                            std::size_t i, const ShardRecord& r) {
  SnapshotHeader h;
  std::memcpy(&h, map.data() + r.snap_offset, sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(path, "shard " + u64s(i) + " image is not a c3 snapshot");
  }
  return h;
}

}  // namespace

bool is_shard_manifest(const std::filesystem::path& path) noexcept {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof kShardMagic];
  if (!in.read(magic, sizeof magic)) return false;
  return std::memcmp(magic, kShardMagic, sizeof magic) == 0;
}

void write_sharded(const std::filesystem::path& path, const shard::ShardedEngine& engine) {
  engine.prepare();

  std::vector<PendingShard> pending(engine.num_shards());
  for (std::size_t i = 0; i < engine.num_shards(); ++i) {
    PendingShard& p = pending[i];
    p.rec.first_owned = engine.first_owned(i);
    p.rec.owned_count = engine.owned_count(i);
    std::ostringstream main_out(std::ios::binary);
    write_stream(main_out, engine.main_engine(i), shard_label(path, i, false));
    p.snap = std::move(main_out).str();
    if (const PreparedGraph* halo = engine.halo_engine(i); halo != nullptr) {
      std::ostringstream halo_out(std::ios::binary);
      write_stream(halo_out, *halo, shard_label(path, i, true));
      p.halo_snap = std::move(halo_out).str();
    }
  }

  Cursor cursor{sizeof(ShardManifestHeader) +
                static_cast<std::uint64_t>(pending.size()) * sizeof(ShardRecord)};
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingShard& p = pending[i];
    const std::span<const node_t> halo_ids = engine.halo_ids(i);
    const std::span<const edge_t> edge_map = engine.edge_map(i);
    const std::span<const edge_t> halo_edge_map = engine.halo_edge_map(i);

    p.rec.snap_offset = cursor.place(p.snap.size());
    p.rec.snap_bytes = p.snap.size();
    p.rec.snap_fingerprint = checksum64(p.snap.data(), p.snap.size());
    if (!p.halo_snap.empty()) {
      p.rec.halo_snap_offset = cursor.place(p.halo_snap.size());
      p.rec.halo_snap_bytes = p.halo_snap.size();
      p.rec.halo_snap_fingerprint = checksum64(p.halo_snap.data(), p.halo_snap.size());
    }
    p.rec.halo_ids_offset = halo_ids.empty() ? 0 : cursor.place(halo_ids.size_bytes());
    p.rec.halo_count = halo_ids.size();
    p.rec.halo_ids_checksum = checksum64(halo_ids.data(), halo_ids.size_bytes());
    p.rec.edge_map_offset = edge_map.empty() ? 0 : cursor.place(edge_map.size_bytes());
    p.rec.edge_map_count = edge_map.size();
    p.rec.edge_map_checksum = checksum64(edge_map.data(), edge_map.size_bytes());
    p.rec.halo_edge_map_offset =
        halo_edge_map.empty() ? 0 : cursor.place(halo_edge_map.size_bytes());
    p.rec.halo_edge_map_count = halo_edge_map.size();
    p.rec.halo_edge_map_checksum = checksum64(halo_edge_map.data(), halo_edge_map.size_bytes());
  }

  ShardManifestHeader h;
  std::memcpy(h.magic, kShardMagic, sizeof kShardMagic);
  h.format_version = kShardFormatVersion;
  h.header_bytes = sizeof(ShardManifestHeader);
  h.shard_count = static_cast<std::uint32_t>(pending.size());
  h.partition_policy = static_cast<std::uint32_t>(engine.policy());
  h.node_bytes = sizeof(node_t);
  h.edge_bytes = sizeof(edge_t);
  h.num_nodes = engine.num_nodes();
  h.num_edges = engine.num_edges();
  h.file_bytes = cursor.offset;

  std::vector<ShardRecord> records;
  records.reserve(pending.size());
  for (const PendingShard& p : pending) records.push_back(p.rec);
  h.header_checksum = 0;
  std::uint64_t hc = checksum64(&h, sizeof h);
  hc = checksum64(records.data(), records.size() * sizeof(ShardRecord), hc);
  h.header_checksum = hc;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(path, "cannot open for writing");
  std::uint64_t written = 0;
  const auto put = [&](const void* data, std::uint64_t bytes) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    written += bytes;
  };
  const auto pad_to = [&](std::uint64_t offset) {
    static constexpr char zeros[kSectionAlign] = {};
    while (written < offset) {
      const std::uint64_t chunk = std::min<std::uint64_t>(offset - written, kSectionAlign);
      out.write(zeros, static_cast<std::streamsize>(chunk));
      written += chunk;
    }
  };
  put(&h, sizeof h);
  put(records.data(), records.size() * sizeof(ShardRecord));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingShard& p = pending[i];
    const ShardRecord& r = p.rec;
    pad_to(r.snap_offset);
    put(p.snap.data(), p.snap.size());
    if (r.halo_snap_offset != 0) {
      pad_to(r.halo_snap_offset);
      put(p.halo_snap.data(), p.halo_snap.size());
    }
    if (r.halo_ids_offset != 0) {
      pad_to(r.halo_ids_offset);
      put(engine.halo_ids(i).data(), engine.halo_ids(i).size_bytes());
    }
    if (r.edge_map_offset != 0) {
      pad_to(r.edge_map_offset);
      put(engine.edge_map(i).data(), engine.edge_map(i).size_bytes());
    }
    if (r.halo_edge_map_offset != 0) {
      pad_to(r.halo_edge_map_offset);
      put(engine.halo_edge_map(i).data(), engine.halo_edge_map(i).size_bytes());
    }
  }
  pad_to(h.file_bytes);
  if (!out) fail(path, "write error");
}

ShardManifestInfo inspect_sharded(const std::filesystem::path& path) {
  const MappedFile map = MappedFile::map_readonly(path);
  const ManifestLayout lay = validate_manifest(map, path);

  ShardManifestInfo info;
  info.format_version = lay.header.format_version;
  info.policy = static_cast<shard::PartitionPolicy>(lay.header.partition_policy);
  info.num_nodes = lay.header.num_nodes;
  info.num_edges = lay.header.num_edges;
  info.file_bytes = lay.header.file_bytes;
  info.shards.reserve(lay.records.size());
  for (std::size_t i = 0; i < lay.records.size(); ++i) {
    const ShardRecord& r = lay.records[i];
    const SnapshotHeader ih = image_header(map, path, i, r);
    if (i == 0) info.options = header_options(ih, shard_label(path, i, false));
    ShardSectionInfo s;
    s.first_owned = r.first_owned;
    s.owned_count = r.owned_count;
    s.halo_count = r.halo_count;
    s.snap_offset = r.snap_offset;
    s.snap_bytes = r.snap_bytes;
    s.halo_snap_offset = r.halo_snap_offset;
    s.halo_snap_bytes = r.halo_snap_bytes;
    s.snap_fingerprint = r.snap_fingerprint;
    s.num_nodes = ih.num_nodes;
    s.num_edges = ih.num_edges;
    info.shards.push_back(s);
  }
  return info;
}

struct ShardedSnapshot::Impl {
  MappedFile map;
  ShardManifestInfo info;
  // The Snapshots (and the spans below, which point into `map`) must stay
  // address-stable: the ShardedEngine borrows them. Impl lives behind a
  // unique_ptr and the vectors are sized once, so moves never relocate them.
  std::vector<Snapshot> mains;
  std::vector<std::optional<Snapshot>> halos;
  std::optional<shard::ShardedEngine> engine;
};

ShardedSnapshot::ShardedSnapshot() : impl_(std::make_unique<Impl>()) {}
ShardedSnapshot::ShardedSnapshot(ShardedSnapshot&&) noexcept = default;
ShardedSnapshot& ShardedSnapshot::operator=(ShardedSnapshot&&) noexcept = default;
ShardedSnapshot::~ShardedSnapshot() = default;

const shard::ShardedEngine& ShardedSnapshot::engine() const noexcept {
  return *impl_->engine;
}
const ShardManifestInfo& ShardedSnapshot::info() const noexcept { return impl_->info; }

ShardedSnapshot ShardedSnapshot::open(const std::filesystem::path& path,
                                      const SnapshotOpenOptions& opts) {
  return open_with(path, nullptr, opts);
}

ShardedSnapshot ShardedSnapshot::open(const std::filesystem::path& path,
                                      const CliqueOptions& expected,
                                      const SnapshotOpenOptions& opts) {
  return open_with(path, &expected, opts);
}

ShardedSnapshot ShardedSnapshot::open_with(const std::filesystem::path& path,
                                           const CliqueOptions* expected,
                                           const SnapshotOpenOptions& opts) {
  ShardedSnapshot snap;
  Impl& impl = *snap.impl_;
  impl.map = opts.force_heap_fallback ? MappedFile::read_heap(path)
                                      : MappedFile::map_readonly(path);
  const ManifestLayout lay = validate_manifest(impl.map, path);
  if (opts.verify_checksums) verify_fingerprints(impl.map, path, lay);
  if (opts.prefault) impl.map.prefault();
  if (opts.lock_memory) (void)impl.map.lock_memory();

  const std::size_t count = lay.records.size();
  impl.mains.reserve(count);
  impl.halos.reserve(count);
  std::vector<shard::LoadedShard> loaded(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ShardRecord& r = lay.records[i];
    impl.mains.push_back(Snapshot::open_buffer(
        {impl.map.data() + r.snap_offset, static_cast<std::size_t>(r.snap_bytes)},
        shard_label(path, i, false), opts, expected));
    if (r.halo_snap_offset != 0) {
      impl.halos.emplace_back(Snapshot::open_buffer(
          {impl.map.data() + r.halo_snap_offset, static_cast<std::size_t>(r.halo_snap_bytes)},
          shard_label(path, i, true), opts, expected));
    } else {
      impl.halos.emplace_back(std::nullopt);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const ShardRecord& r = lay.records[i];
    shard::LoadedShard& s = loaded[i];
    s.main = &impl.mains[i].engine();
    s.halo = impl.halos[i].has_value() ? &impl.halos[i]->engine() : nullptr;
    s.first_owned = static_cast<node_t>(r.first_owned);
    s.owned_count = static_cast<node_t>(r.owned_count);
    s.halo_ids = array_span<node_t>(impl.map, r.halo_ids_offset, r.halo_count);
    s.edge_map = array_span<edge_t>(impl.map, r.edge_map_offset, r.edge_map_count);
    s.halo_edge_map =
        array_span<edge_t>(impl.map, r.halo_edge_map_offset, r.halo_edge_map_count);
  }
  impl.engine.emplace(std::move(loaded), static_cast<node_t>(lay.header.num_nodes),
                      static_cast<edge_t>(lay.header.num_edges),
                      impl.mains[0].info().options,
                      static_cast<shard::PartitionPolicy>(lay.header.partition_policy));

  impl.info.format_version = lay.header.format_version;
  impl.info.policy = static_cast<shard::PartitionPolicy>(lay.header.partition_policy);
  impl.info.num_nodes = lay.header.num_nodes;
  impl.info.num_edges = lay.header.num_edges;
  impl.info.file_bytes = lay.header.file_bytes;
  impl.info.options = impl.mains[0].info().options;
  impl.info.shards.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ShardRecord& r = lay.records[i];
    ShardSectionInfo s;
    s.first_owned = r.first_owned;
    s.owned_count = r.owned_count;
    s.halo_count = r.halo_count;
    s.snap_offset = r.snap_offset;
    s.snap_bytes = r.snap_bytes;
    s.halo_snap_offset = r.halo_snap_offset;
    s.halo_snap_bytes = r.halo_snap_bytes;
    s.snap_fingerprint = r.snap_fingerprint;
    s.num_nodes = impl.mains[i].info().num_nodes;
    s.num_edges = impl.mains[i].info().num_edges;
    impl.info.shards.push_back(s);
  }
  return snap;
}

}  // namespace c3::snapshot
