// Local subgraph representation for the recursive search.
//
// Algorithm 1 preprocesses each qualifying edge e by renaming its community
// C(e) to consecutive integers and building "an adjacency matrix of G[C(e)]"
// with "a boolean indicator table" per edge (Section 2.2). We realize both
// as bitset rows over the local universe: row(a) holds the local neighbors
// of a, so edge probes are single bit tests and community intersections are
// word-parallel ANDs.
//
// Local ids are assigned in ascending rank order, so the total order of the
// orientation is the natural `<` on local ids and the paper's distance
// function delta_I is an index difference in the sorted candidate array.
//
// Storage follows the kernel substrate contract (util/bitkernels.hpp): rows
// live in 64-byte-aligned memory with a per-row stride of
// kernel_stride_words(n) — exact for communities of <= 256 vertices, padded
// to the 512-bit vector width above that — and padding words stay zero so
// the SIMD kernels can run tail-free over whole rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clique/common.hpp"
#include "graph/digraph.hpp"
#include "util/bitkernels.hpp"
#include "util/bitwords.hpp"

namespace c3 {

/// Reusable per-worker storage for one local subgraph and the recursion
/// stacks on top of it. Sized for the largest community met so far; reused
/// across top-level edges to avoid allocation in the hot loop.
class LocalGraph {
 public:
  /// Prepares an empty local graph over `n` vertices. Clearing is lazy:
  /// only the rows actually populated for the previous community are
  /// zeroed (everything else is zero by invariant), so tiny communities
  /// stop paying O(n·words) memset on every top-level edge.
  void reset(int n);

  /// Number of local vertices.
  [[nodiscard]] int size() const noexcept { return n_; }

  /// Words per bitset row (the kernel stride — padding words are zero).
  [[nodiscard]] int words() const noexcept { return words_; }

  /// Adds the undirected edge {a, b} (sets both direction bits).
  void add_edge(int a, int b) noexcept {
    mark_dirty(a);
    mark_dirty(b);
    bits::set_bit(row_mut(a), static_cast<std::size_t>(b));
    bits::set_bit(row_mut(b), static_cast<std::size_t>(a));
  }

  [[nodiscard]] bool has_edge(int a, int b) const noexcept {
    return bits::test_bit(row(a), static_cast<std::size_t>(b));
  }

  [[nodiscard]] const std::uint64_t* row(int a) const noexcept {
    return rows_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(words_);
  }

  [[nodiscard]] std::uint64_t* row_mut(int a) noexcept {
    return rows_.data() + static_cast<std::size_t>(a) * static_cast<std::size_t>(words_);
  }

  /// Local degree of a (popcount of its row).
  [[nodiscard]] int degree(int a) const noexcept {
    return static_cast<int>(kern::popcount(row(a), static_cast<std::size_t>(words_)));
  }

  /// Rows touched since the last reset (test/observability hook for the
  /// lazy-clearing invariant).
  [[nodiscard]] int dirty_rows() const noexcept { return static_cast<int>(dirty_rows_.size()); }

 private:
  void mark_dirty(int a) noexcept {
    if (row_dirty_[static_cast<std::size_t>(a)] == 0) {
      row_dirty_[static_cast<std::size_t>(a)] = 1;
      dirty_rows_.push_back(a);  // within capacity: reset() reserves n slots
    }
  }

  int n_ = 0;
  int words_ = 0;
  bits::KernelWords rows_;
  std::vector<std::uint8_t> row_dirty_;
  std::vector<int> dirty_rows_;
};

/// Populates `lg` with the subgraph of `dag` induced by `members` (global
/// ranks, sorted ascending). Every arc between members is found in the
/// out-list of its lower endpoint via a sorted two-pointer intersection:
/// O(sum over members of (out-degree + |members|)).
void build_local_graph(const Digraph& dag, std::span<const node_t> members, LocalGraph& lg);

/// Dense-vs-CSR subproblem selection: true when a subproblem over
/// `nvertices` vertices with at most `arcs_upper` arcs is worth rebuilding
/// as a bitset LocalGraph (at least dense_subproblem_min_vertices()
/// vertices and average degree >= nvertices/8); below either bar the CSR
/// label recursion stays cheaper.
[[nodiscard]] bool use_dense_subproblem(int nvertices, std::int64_t arcs_upper) noexcept;

/// The vertex-count floor for use_dense_subproblem. Default 32, overridable
/// with the C3_DENSE_MIN environment variable at startup; settable at
/// runtime so tests can force the dense (1) or CSR (INT_MAX) path.
void set_dense_subproblem_min_vertices(int n) noexcept;
[[nodiscard]] int dense_subproblem_min_vertices() noexcept;

}  // namespace c3
