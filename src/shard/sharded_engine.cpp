#include "shard/sharded_engine.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/timer.hpp"

namespace c3::shard {

/// One shard: the engine views every query path uses, plus (in-memory mode)
/// the storage those views borrow from. In view mode the storage members
/// stay empty and everything points into memory owned by the caller (a
/// sharded snapshot's mapping).
struct ShardedEngine::Shard {
  // Owned storage — in-memory construction only.
  std::unique_ptr<Graph> main_graph;
  std::unique_ptr<Graph> halo_graph;
  std::unique_ptr<PreparedGraph> main_owned;
  std::unique_ptr<PreparedGraph> halo_owned;
  std::vector<node_t> halo_ids_store;
  std::vector<edge_t> edge_map_store;
  std::vector<edge_t> halo_edge_map_store;

  // Views — both modes. (Moving a Shard keeps them valid: vector moves
  // preserve heap buffers, unique_ptr moves preserve pointees.)
  const PreparedGraph* main = nullptr;
  const PreparedGraph* halo = nullptr;  // nullptr when the halo is empty
  node_t first_owned = 0;
  node_t owned_count = 0;
  std::span<const node_t> halo_ids;
  std::span<const edge_t> edge_map;
  std::span<const edge_t> halo_edge_map;

  /// Local id -> global id. Owned locals come first (ascending), halo after.
  [[nodiscard]] node_t global_of(node_t local) const noexcept {
    return local < owned_count ? first_owned + local
                               : halo_ids[static_cast<std::size_t>(local) - owned_count];
  }
};

ShardedEngine::ShardedEngine(const Graph& g, const ShardingOptions& sharding,
                             const CliqueOptions& opts)
    : num_nodes_(g.num_nodes()), num_edges_(g.num_edges()), opts_(opts),
      policy_(sharding.policy) {
  const std::vector<ShardRange> ranges = partition_ranges(g, sharding);
  shards_.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    ShardPart part = build_shard(g, range);
    Shard s;
    s.first_owned = range.lo;
    s.owned_count = range.size();
    s.main_graph = std::make_unique<Graph>(std::move(part.main.graph));
    s.main_owned = std::make_unique<PreparedGraph>(*s.main_graph, opts_);
    s.main = s.main_owned.get();
    s.halo_ids_store = std::move(part.halo);
    s.edge_map_store = std::move(part.edge_map);
    s.halo_edge_map_store = std::move(part.halo_edge_map);
    if (!s.halo_ids_store.empty()) {
      s.halo_graph = std::make_unique<Graph>(std::move(part.halo_sub.graph));
      s.halo_owned = std::make_unique<PreparedGraph>(*s.halo_graph, opts_);
      s.halo = s.halo_owned.get();
    }
    s.halo_ids = s.halo_ids_store;
    s.edge_map = s.edge_map_store;
    s.halo_edge_map = s.halo_edge_map_store;
    shards_.push_back(std::move(s));
  }
}

ShardedEngine::ShardedEngine(std::vector<LoadedShard> shards, node_t num_nodes,
                             edge_t num_edges, const CliqueOptions& opts,
                             PartitionPolicy policy)
    : num_nodes_(num_nodes), num_edges_(num_edges), opts_(opts), policy_(policy) {
  if (shards.empty()) throw std::invalid_argument("ShardedEngine: no shards");
  node_t expect = 0;
  shards_.reserve(shards.size());
  for (const LoadedShard& in : shards) {
    if (in.main == nullptr) throw std::invalid_argument("ShardedEngine: shard without an engine");
    if (in.first_owned != expect) {
      throw std::invalid_argument("ShardedEngine: shard ranges do not tile [0, n)");
    }
    expect = in.first_owned + in.owned_count;
    Shard s;
    s.main = in.main;
    s.halo = in.halo;
    s.first_owned = in.first_owned;
    s.owned_count = in.owned_count;
    s.halo_ids = in.halo_ids;
    s.edge_map = in.edge_map;
    s.halo_edge_map = in.halo_edge_map;
    shards_.push_back(std::move(s));
  }
  if (expect != num_nodes_) {
    throw std::invalid_argument("ShardedEngine: shard ranges do not cover [0, n)");
  }
}

ShardedEngine::ShardedEngine(ShardedEngine&&) noexcept = default;
ShardedEngine& ShardedEngine::operator=(ShardedEngine&&) noexcept = default;
ShardedEngine::~ShardedEngine() = default;

std::size_t ShardedEngine::num_shards() const noexcept { return shards_.size(); }
node_t ShardedEngine::num_nodes() const noexcept { return num_nodes_; }
edge_t ShardedEngine::num_edges() const noexcept { return num_edges_; }
const CliqueOptions& ShardedEngine::options() const noexcept { return opts_; }
PartitionPolicy ShardedEngine::policy() const noexcept { return policy_; }

const PreparedGraph& ShardedEngine::main_engine(std::size_t shard) const {
  return *shards_.at(shard).main;
}
const PreparedGraph* ShardedEngine::halo_engine(std::size_t shard) const {
  return shards_.at(shard).halo;
}
node_t ShardedEngine::first_owned(std::size_t shard) const {
  return shards_.at(shard).first_owned;
}
node_t ShardedEngine::owned_count(std::size_t shard) const {
  return shards_.at(shard).owned_count;
}
std::span<const node_t> ShardedEngine::halo_ids(std::size_t shard) const {
  return shards_.at(shard).halo_ids;
}
std::span<const edge_t> ShardedEngine::edge_map(std::size_t shard) const {
  return shards_.at(shard).edge_map;
}
std::span<const edge_t> ShardedEngine::halo_edge_map(std::size_t shard) const {
  return shards_.at(shard).halo_edge_map;
}

void ShardedEngine::prepare() const {
  // One shard at a time: each prepare() parallelizes internally over the
  // full worker pool, so stacking shards would only oversubscribe it.
  for (const Shard& s : shards_) {
    for (const PreparedGraph* e : {s.main, s.halo}) {
      if (e == nullptr) continue;
      e->prepare();
      const Graph& g = e->graph();
      if (g.num_nodes() > 0 && g.num_edges() > 0) (void)e->clique_number_upper_bound();
    }
  }
}

node_t ShardedEngine::clique_number_upper_bound() const {
  node_t bound = 0;
  for (const Shard& s : shards_) {
    const Graph& g = s.main->graph();
    if (g.num_nodes() == 0) continue;
    if (g.num_edges() == 0) {
      bound = std::max<node_t>(bound, 1);
      continue;
    }
    bound = std::max(bound, s.main->clique_number_upper_bound());
  }
  return bound;
}

namespace {

/// Which kinds need the halo sub-query (the inclusion-exclusion merges).
/// The others compose from the main sub-answers alone (see the header).
bool needs_halo(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Count:
    case QueryKind::PerVertexCounts:
    case QueryKind::PerEdgeCounts:
    case QueryKind::Spectrum:
      return true;
    default:
      return false;
  }
}

bool sub_truncated(const Answer& main, const Answer& halo) noexcept {
  return main.truncated || halo.truncated;
}

std::uint64_t steady_ns(std::chrono::steady_clock::time_point t) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count());
}

}  // namespace

Answer ShardedEngine::run(const Query& query) const { return run(query, nullptr); }

Answer ShardedEngine::run(const Query& query, obs::TraceContext* trace) const {
  const WallTimer timer;
  const std::size_t count = shards_.size();

  // Split the effective worker budget across the shard lanes, QueryBatch
  // style: each sub-query runs under its own per-thread cap, so a
  // `workers=N` request stays a true N-worker request in aggregate.
  const int pool = std::max(1, num_workers());
  const int requested =
      query.opts.max_workers > 0 ? std::min(query.opts.max_workers, pool) : pool;
  const auto lanes = static_cast<std::size_t>(
      std::min<std::size_t>(count, static_cast<std::size_t>(std::max(1, requested))));
  const int per_shard = std::max(1, requested / static_cast<int>(lanes));

  // HasClique/FindClique stop the other shards once any shard has found a
  // clique — but only through a token we own; a caller's token is passed
  // through untouched so its cancellation semantics stay the caller's.
  std::shared_ptr<std::atomic<bool>> stop;
  if ((query.kind == QueryKind::HasClique || query.kind == QueryKind::FindClique) &&
      query.opts.cancel == nullptr && count > 1) {
    stop = std::make_shared<std::atomic<bool>>(false);
  }

  const bool run_halo = needs_halo(query.kind);
  std::vector<Answer> mains(count);
  std::vector<Answer> halos(count);
  std::vector<std::exception_ptr> errors(count);
  std::vector<std::uint64_t> start_ns(count, 0);
  std::vector<std::uint64_t> dur_ns(count, 0);

  const auto scatter_steady = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() noexcept {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        Query sub = query;
        sub.opts.max_workers = per_shard;
        if (stop != nullptr) sub.opts.cancel = stop;
        // The result limit is applied at the merge: a per-shard limit could
        // fill with halo-rooted cliques the merge then filters out.
        if (query.kind == QueryKind::List) sub.opts.result_limit = 0;
        mains[i] = shards_[i].main->run(sub);
        if (run_halo && shards_[i].halo != nullptr) halos[i] = shards_[i].halo->run(sub);
        if (stop != nullptr && mains[i].found) stop->store(true, std::memory_order_relaxed);
      } catch (...) {
        errors[i] = std::current_exception();
        if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
      }
      const auto t1 = std::chrono::steady_clock::now();
      start_ns[i] = steady_ns(t0) - steady_ns(scatter_steady);
      dur_ns[i] = steady_ns(t1) - steady_ns(t0);
    }
  };

  if (lanes <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (std::size_t t = 0; t < lanes; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (obs::enabled()) {
    static obs::Counter& shard_queries =
        obs::Registry::global().counter("c3_shard_queries_total");
    for (std::size_t i = 0; i < count; ++i) {
      shard_queries.add(run_halo && shards_[i].halo != nullptr ? 2 : 1);
    }
  }
  if (trace != nullptr) {
    // TraceContext is single-threaded: the workers recorded offsets relative
    // to the scatter start; the gathering thread rebases them onto the trace
    // clock and publishes.
    const std::uint64_t elapsed =
        steady_ns(std::chrono::steady_clock::now()) - steady_ns(scatter_steady);
    const std::uint64_t now = trace->now_ns();
    const std::uint64_t scatter_base = now > elapsed ? now - elapsed : 0;
    for (std::size_t i = 0; i < count; ++i) {
      trace->add_span(obs::Stage::ShardSearch, scatter_base + start_ns[i], dur_ns[i]);
    }
    trace->annotate("shards", std::to_string(count));
    trace->annotate("shard_policy", partition_policy_name(policy_));
  }
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }

  Answer answer = gather(query, std::move(mains), std::move(halos));
  answer.seconds = timer.seconds();
  if (trace != nullptr) trace->mark_truncated(answer.truncated);
  return answer;
}

Answer ShardedEngine::gather(const Query& query, std::vector<Answer> mains,
                             std::vector<Answer> halos) const {
  Answer answer;
  answer.kind = query.kind;
  answer.k = query.k;
  const std::size_t count = shards_.size();
  const auto minus = [](count_t a, count_t b) { return a >= b ? a - b : 0; };

  for (std::size_t i = 0; i < count; ++i) {
    accumulate_stats(answer.stats, mains[i].stats);
    accumulate_stats(answer.stats, halos[i].stats);
  }

  switch (query.kind) {
    case QueryKind::Count: {
      count_t total = 0;
      for (std::size_t i = 0; i < count; ++i) {
        // owned(s) = count(G_s) - count(G_s[halo]); saturating only matters
        // for truncated sub-answers, which mark the merge truncated anyway.
        total += minus(mains[i].count, halos[i].count);
        answer.truncated |= sub_truncated(mains[i], halos[i]);
      }
      answer.count = total;
      answer.stats.cliques = total;
      break;
    }
    case QueryKind::PerVertexCounts: {
      answer.per_counts.assign(num_nodes_, 0);
      for (std::size_t i = 0; i < count; ++i) {
        const Shard& s = shards_[i];
        const std::vector<count_t>& main = mains[i].per_counts;
        for (std::size_t v = 0; v < main.size(); ++v) {
          answer.per_counts[s.global_of(static_cast<node_t>(v))] += main[v];
        }
        const std::vector<count_t>& halo = halos[i].per_counts;
        for (std::size_t h = 0; h < halo.size(); ++h) {
          count_t& slot = answer.per_counts[s.halo_ids[h]];
          slot = minus(slot, halo[h]);
        }
        answer.truncated |= sub_truncated(mains[i], halos[i]);
      }
      break;
    }
    case QueryKind::PerEdgeCounts: {
      answer.per_counts.assign(num_edges_, 0);
      for (std::size_t i = 0; i < count; ++i) {
        const Shard& s = shards_[i];
        const std::vector<count_t>& main = mains[i].per_counts;
        for (std::size_t e = 0; e < main.size(); ++e) {
          answer.per_counts[s.edge_map[e]] += main[e];
        }
        const std::vector<count_t>& halo = halos[i].per_counts;
        for (std::size_t e = 0; e < halo.size(); ++e) {
          count_t& slot = answer.per_counts[s.halo_edge_map[e]];
          slot = minus(slot, halo[e]);
        }
        answer.truncated |= sub_truncated(mains[i], halos[i]);
      }
      break;
    }
    case QueryKind::Spectrum: {
      // Per-k owned sums: all mains in, then all halos out (at subtraction
      // time sums[k] >= the halo total, so the unsigned walk never dips).
      std::vector<count_t> sums;
      for (std::size_t i = 0; i < count; ++i) {
        const std::vector<count_t>& c = mains[i].spectrum.counts;
        if (c.size() > sums.size()) sums.resize(c.size(), 0);
        for (std::size_t k = 0; k < c.size(); ++k) sums[k] += c[k];
        answer.truncated |= sub_truncated(mains[i], halos[i]);
      }
      for (std::size_t i = 0; i < count; ++i) {
        const std::vector<count_t>& c = halos[i].spectrum.counts;
        for (std::size_t k = 0; k < c.size() && k < sums.size(); ++k) {
          sums[k] = minus(sums[k], c[k]);
        }
      }
      // Reassemble exactly the way PreparedGraph::run builds a spectrum, so
      // the merged counts/omega are bit-identical to the unsharded answer.
      CliqueSpectrum& out = answer.spectrum;
      out.counts.assign(2, 0);
      for (std::size_t i = 0; i < count; ++i) {
        out.preprocess_seconds += mains[i].spectrum.preprocess_seconds;
        out.preprocess_seconds += halos[i].spectrum.preprocess_seconds;
        out.search_seconds += mains[i].spectrum.search_seconds;
        out.search_seconds += halos[i].spectrum.search_seconds;
      }
      if (num_nodes_ > 0) {
        out.counts[1] = num_nodes_;
        out.omega = 1;
        if (num_edges_ > 0 && query.kmax != 1) {
          out.counts.push_back(num_edges_);
          out.omega = 2;
          if (query.kmax != 2) {
            for (int k = 3; query.kmax <= 0 || k <= query.kmax; ++k) {
              const count_t c =
                  static_cast<std::size_t>(k) < sums.size() ? sums[static_cast<std::size_t>(k)]
                                                            : 0;
              if (c == 0) break;
              out.counts.push_back(c);
              out.omega = static_cast<node_t>(k);
            }
          }
        }
      }
      answer.stats.preprocess_seconds = out.preprocess_seconds;
      answer.stats.search_seconds = out.search_seconds;
      answer.omega = out.omega;
      answer.count = out.counts.empty() ? 0 : out.counts.back();
      break;
    }
    case QueryKind::List: {
      for (std::size_t i = 0; i < count; ++i) {
        const Shard& s = shards_[i];
        answer.truncated |= mains[i].truncated;
        for (std::vector<node_t>& clique : mains[i].cliques) {
          node_t min_local = clique.empty() ? 0 : clique[0];
          for (const node_t v : clique) min_local = std::min(min_local, v);
          // Ascending relabeling: min local id < owned_count <=> the root
          // (global min) is owned — this shard's clique, everyone else skips.
          if (min_local >= s.owned_count) continue;
          for (node_t& v : clique) v = s.global_of(v);
          answer.cliques.push_back(std::move(clique));
        }
      }
      const count_t limit = query.opts.result_limit;
      if (limit > 0 && answer.cliques.size() > static_cast<std::size_t>(limit)) {
        answer.cliques.resize(static_cast<std::size_t>(limit));
        answer.truncated = true;
      }
      answer.count = static_cast<count_t>(answer.cliques.size());
      answer.stats.cliques = answer.count;
      break;
    }
    case QueryKind::HasClique:
    case QueryKind::FindClique: {
      for (std::size_t i = 0; i < count; ++i) {
        if (!mains[i].found) continue;
        answer.found = true;
        if (query.kind == QueryKind::FindClique && !mains[i].witness.empty()) {
          answer.witness = std::move(mains[i].witness);
          for (node_t& v : answer.witness) v = shards_[i].global_of(v);
        }
        break;
      }
      if (!answer.found) {
        for (const Answer& m : mains) answer.truncated |= m.truncated;
      }
      break;
    }
    case QueryKind::MaxClique: {
      std::size_t best = count;  // first shard attaining the max omega
      for (std::size_t i = 0; i < count; ++i) {
        answer.truncated |= mains[i].truncated;
        if (best == count || mains[i].omega > answer.omega) {
          answer.omega = mains[i].omega;
          best = i;
        }
      }
      if (best < count && !mains[best].witness.empty()) {
        answer.witness = std::move(mains[best].witness);
        for (node_t& v : answer.witness) v = shards_[best].global_of(v);
      }
      answer.found =
          query.opts.want_witness ? !answer.witness.empty() : answer.omega > 0;
      break;
    }
  }
  return answer;
}

std::uint64_t sharded_fingerprint(std::string_view graph_id, const ShardedEngine& engine) {
  // FNV-1a, same fold as engine_fingerprint — plus the partition identity
  // and a domain tag, so sharded/unsharded registrations never alias.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  };
  const auto fold_u64 = [&fold](std::uint64_t v) { fold(&v, sizeof v); };
  fold("sharded", 7);
  fold(graph_id.data(), graph_id.size());
  const CliqueOptions& o = engine.options();
  fold_u64(static_cast<std::uint32_t>(o.algorithm));
  fold_u64(static_cast<std::uint32_t>(o.vertex_order));
  fold_u64(static_cast<std::uint32_t>(o.edge_order));
  std::uint64_t eps_bits = 0;
  static_assert(sizeof eps_bits == sizeof o.eps);
  std::memcpy(&eps_bits, &o.eps, sizeof eps_bits);
  fold_u64(eps_bits);
  fold_u64(o.order_seed);
  fold_u64(o.distance_pruning ? 1 : 0);
  fold_u64(o.triangle_growth ? 1 : 0);
  fold_u64(engine.num_nodes());
  fold_u64(engine.num_edges());
  fold_u64(static_cast<std::uint32_t>(engine.policy()));
  fold_u64(engine.num_shards());
  for (std::size_t i = 0; i < engine.num_shards(); ++i) {
    fold_u64(engine.first_owned(i));
    fold_u64(engine.owned_count(i));
  }
  return h;
}

}  // namespace c3::shard
