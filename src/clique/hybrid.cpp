#include "clique/hybrid.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "clique/engine.hpp"
#include "clique/local_graph.hpp"
#include "clique/recursive.hpp"
#include "parallel/parallel.hpp"
#include "util/bitwords.hpp"
#include "util/timer.hpp"

namespace c3 {
namespace {

/// Small-universe exact degeneracy order over a LocalGraph: the same
/// Batagelj-Zaversnik sweep as order/degeneracy.cpp, but on a universe of
/// O(s) vertices — so the greedy's linear depth only touches gamma, not n.
/// That is the whole point of the hybrid (Section 4.2).
void local_degeneracy_order(const LocalGraph& lg, std::vector<int>& order,
                            LocalDegeneracyScratch& s) {
  const int n = lg.size();
  order.clear();
  if (n == 0) return;

  // Materialize adjacency lists from the bitset rows.
  s.adj_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  s.degree.assign(static_cast<std::size_t>(n), 0);
  int max_deg = 0;
  for (int v = 0; v < n; ++v) {
    const int d = lg.degree(v);
    s.degree[static_cast<std::size_t>(v)] = d;
    s.adj_offsets[static_cast<std::size_t>(v) + 1] = s.adj_offsets[static_cast<std::size_t>(v)] + d;
    max_deg = std::max(max_deg, d);
  }
  s.adj.resize(static_cast<std::size_t>(s.adj_offsets[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    int cursor = s.adj_offsets[static_cast<std::size_t>(v)];
    bits::for_each_bit(lg.row(v), static_cast<std::size_t>(lg.words()),
                       [&](std::size_t w) { s.adj[static_cast<std::size_t>(cursor++)] = static_cast<int>(w); });
  }

  // Batagelj-Zaversnik bin sweep (see order/degeneracy.cpp for the argument).
  s.bin.assign(static_cast<std::size_t>(max_deg) + 2, 0);
  for (int v = 0; v < n; ++v) s.bin[static_cast<std::size_t>(s.degree[static_cast<std::size_t>(v)]) + 1]++;
  for (int d = 0; d <= max_deg; ++d) s.bin[static_cast<std::size_t>(d) + 1] += s.bin[static_cast<std::size_t>(d)];
  s.verts.assign(static_cast<std::size_t>(n), 0);
  s.pos.assign(static_cast<std::size_t>(n), 0);
  {
    std::vector<int> cursor(s.bin.begin(), s.bin.end() - 1);
    for (int v = 0; v < n; ++v) {
      const int p = cursor[static_cast<std::size_t>(s.degree[static_cast<std::size_t>(v)])]++;
      s.verts[static_cast<std::size_t>(p)] = v;
      s.pos[static_cast<std::size_t>(v)] = p;
    }
  }
  order.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int v = s.verts[static_cast<std::size_t>(i)];
    order[static_cast<std::size_t>(i)] = v;
    for (int e = s.adj_offsets[static_cast<std::size_t>(v)];
         e < s.adj_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
      const int w = s.adj[static_cast<std::size_t>(e)];
      if (s.degree[static_cast<std::size_t>(w)] > s.degree[static_cast<std::size_t>(v)]) {
        const int dw = s.degree[static_cast<std::size_t>(w)];
        const int pw = s.pos[static_cast<std::size_t>(w)];
        const int pt = s.bin[static_cast<std::size_t>(dw)];
        const int t = s.verts[static_cast<std::size_t>(pt)];
        if (w != t) {
          std::swap(s.verts[static_cast<std::size_t>(pw)], s.verts[static_cast<std::size_t>(pt)]);
          s.pos[static_cast<std::size_t>(w)] = pt;
          s.pos[static_cast<std::size_t>(t)] = pw;
        }
        ++s.bin[static_cast<std::size_t>(dw)];
        --s.degree[static_cast<std::size_t>(w)];
      }
    }
  }
}

}  // namespace

CliqueResult hybrid_search(const Digraph& dag, int k, const CliqueCallback* callback,
                           const CliqueOptions& opts, QueryScratch& scratch) {
  CliqueResult result;
  result.stats.order_quality = dag.max_out_degree();
  result.stats.gamma = result.stats.order_quality;

  WallTimer search_timer;
  const node_t n = dag.num_nodes();
  result.stats.top_level_tasks = n;
  scratch.reset_query();
  std::atomic<bool>& stop = scratch.stop;

  parallel_for_dynamic(
      0, n,
      [&](std::size_t v) {
        if (stop.load(std::memory_order_relaxed)) return;
        const auto members = dag.out_neighbors(static_cast<node_t>(v));
        if (static_cast<int>(members.size()) < k - 1) return;
        CliqueScratch& w = scratch.local();

        // Induce G[N+(v)] in approximate-rank space...
        build_local_graph(dag, members, w.lg_aux);
        // ...compute its exact degeneracy order...
        local_degeneracy_order(w.lg_aux, w.inner_order, w.deg);
        const int sz = w.lg_aux.size();
        w.inner_rank.assign(static_cast<std::size_t>(sz), 0);
        for (int r = 0; r < sz; ++r)
          w.inner_rank[static_cast<std::size_t>(w.inner_order[static_cast<std::size_t>(r)])] = r;
        // ...and rename the subgraph into inner-rank space.
        w.lg.reset(sz);
        for (int a = 0; a < sz; ++a) {
          bits::for_each_bit(w.lg_aux.row(a), static_cast<std::size_t>(w.lg_aux.words()),
                             [&](std::size_t b) {
                               if (static_cast<int>(b) > a)
                                 w.lg.add_edge(w.inner_rank[static_cast<std::size_t>(a)],
                                               w.inner_rank[b]);
                             });
        }

        w.ctx.lg = &w.lg;
        w.ctx.prune = opts.distance_pruning;
        w.ctx.ctr = &w.ctr;
        w.ctx.callback = callback;
        w.ctx.stop = callback != nullptr ? &stop : nullptr;
        if (callback != nullptr) {
          w.member_orig.resize(members.size());
          for (int r = 0; r < sz; ++r) {
            const int approx_local = w.inner_order[static_cast<std::size_t>(r)];
            w.member_orig[static_cast<std::size_t>(r)] =
                dag.original_id(members[static_cast<std::size_t>(approx_local)]);
          }
          w.ctx.member_to_orig = w.member_orig.data();
          w.ctx.clique_stack.clear();
          w.ctx.clique_stack.push_back(dag.original_id(static_cast<node_t>(v)));
        }

        // Search (k-1)-cliques in G[N+(v)]; each completes with v.
        w.count += search_cliques_all(w.ctx, k - 1, opts.triangle_growth);
      },
      1);

  scratch.merge_into(result);
  result.stats.search_seconds = search_timer.seconds();
  return result;
}

CliqueResult hybrid_count(const Graph& g, int k, const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::Hybrid;
  return PreparedGraph(g, o).count(k);
}

CliqueResult hybrid_list(const Graph& g, int k, const CliqueCallback& callback,
                         const CliqueOptions& opts) {
  CliqueOptions o = opts;
  o.algorithm = Algorithm::Hybrid;
  return PreparedGraph(g, o).list(k, callback);
}

}  // namespace c3
