#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "util/timer.hpp"

namespace c3::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("c3::net: " + what + " (" + std::strerror(errno) + ")");
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int UniqueFd::release() noexcept { return std::exchange(fd_, -1); }

void UniqueFd::close() noexcept {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

#if defined(_WIN32)

UniqueFd listen_tcp(const std::string&, std::uint16_t, int*, int) {
  throw std::runtime_error("c3::net: not supported on this platform");
}
AcceptResult accept_connection(int) { return AcceptResult{}; }
void shutdown_listener(int) noexcept {}
UniqueFd connect_tcp(const std::string&, std::uint16_t, double) {
  throw std::runtime_error("c3::net: not supported on this platform");
}
LineChannel::ReadStatus LineChannel::read_line(std::string&, double) {
  return ReadStatus::Failed;
}
bool LineChannel::write_line(std::string_view) { return false; }
void LineChannel::shutdown_read() noexcept {}
void LineChannel::shutdown() noexcept {}

#else

UniqueFd listen_tcp(const std::string& address, std::uint16_t port, int* bound_port,
                    int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket failed");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("c3::net: invalid bind address '" + address + "'");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail("bind to " + address + ":" + std::to_string(port) + " failed");
  }
  if (::listen(fd.get(), backlog) != 0) fail("listen failed");

  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      fail("getsockname failed");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

AcceptResult accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return AcceptResult{AcceptStatus::Accepted, UniqueFd(fd)};
    }
    switch (errno) {
      case EINTR:
        continue;
      // A client that reset during the handshake aborts ONE accept, not the
      // listener.
      case ECONNABORTED:
#if defined(EPROTO)
      case EPROTO:
#endif
        return AcceptResult{AcceptStatus::Retry, UniqueFd()};
      // Descriptor/buffer exhaustion is transient: the caller can reap
      // finished connections and back off instead of dying.
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        return AcceptResult{AcceptStatus::RetryAfterDelay, UniqueFd()};
      default:
        // EBADF/EINVAL: the listener was closed or shut down — the stop
        // signal. Anything unexpected also stops rather than spinning hot.
        return AcceptResult{AcceptStatus::Stopped, UniqueFd()};
    }
  }
}

void shutdown_listener(int listen_fd) noexcept { ::shutdown(listen_fd, SHUT_RDWR); }

UniqueFd connect_tcp(const std::string& address, std::uint16_t port, double timeout_seconds) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("c3::net: invalid address '" + address + "'");
  }

  // Non-blocking connect + poll gives the timeout; back to blocking after.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  (void)::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    fail("connect to " + address + ":" + std::to_string(port) + " failed");
  }
  if (rc != 0) {
    // Same EINTR discipline as LineChannel::read_line: a signal mid-poll
    // resumes the wait with the remaining budget, and poll failure is
    // reported as what it is, not as a timeout.
    const WallTimer timer;
    for (;;) {
      int timeout_ms = -1;
      if (timeout_seconds > 0) {
        const double left = timeout_seconds - timer.seconds();
        if (left <= 0) {
          throw std::runtime_error("c3::net: connect to " + address + ":" +
                                   std::to_string(port) + " timed out");
        }
        timeout_ms = static_cast<int>(left * 1000.0) + 1;
      }
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready > 0) break;
      if (ready == 0) {
        throw std::runtime_error("c3::net: connect to " + address + ":" +
                                 std::to_string(port) + " timed out");
      }
      if (errno != EINTR) {
        fail("poll while connecting to " + address + ":" + std::to_string(port));
      }
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      fail("connect to " + address + ":" + std::to_string(port) + " failed");
    }
  }
  (void)::fcntl(fd.get(), F_SETFL, flags);
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

LineChannel::ReadStatus LineChannel::read_line(std::string& line, double timeout_seconds) {
  const WallTimer timer;
  for (;;) {
    // A complete line already buffered costs no syscall.
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      // The bound applies to complete lines too — a newline arriving in the
      // same recv burst as an oversized line must not bypass it.
      if (nl > max_line_) return ReadStatus::TooLong;
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF clients
      return ReadStatus::Line;
    }
    if (buffer_.size() > max_line_) return ReadStatus::TooLong;

    int timeout_ms = -1;
    if (timeout_seconds > 0) {
      const double left = timeout_seconds - timer.seconds();
      if (left <= 0) return ReadStatus::Timeout;
      timeout_ms = static_cast<int>(left * 1000.0) + 1;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return ReadStatus::Timeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::Failed;
    }

    char chunk[4096];
    const ssize_t got = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return ReadStatus::Closed;  // EOF (peer close or shutdown)
    if (errno == EINTR) continue;
    return ReadStatus::Failed;
  }
}

bool LineChannel::write_line(std::string_view line) {
  // One assembled buffer, one send loop: the response goes out in a single
  // segment for any realistically sized answer.
  std::string out;
  out.reserve(line.size() + 1);
  out.append(line);
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd_.get(), out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void LineChannel::shutdown_read() noexcept { ::shutdown(fd_.get(), SHUT_RD); }

void LineChannel::shutdown() noexcept { ::shutdown(fd_.get(), SHUT_RDWR); }

#endif  // !_WIN32

}  // namespace c3::net
