// Regenerates Figure 9a of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Jester2 (rating projection) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::jester_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 9a";
  cfg.paper_ref = "72T: c3List fastest for k>=9 (k=10: 3643.4s vs 3835.7/5414.9)";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
