// Shared-memory parallel execution substrate.
//
// The paper's algorithms are stated in the work/depth (CREW PRAM) model and
// implemented, as in the original evaluation, on top of OpenMP. This header
// provides the loop primitives used across the library:
//
//   * num_workers / set_num_workers / worker_id — worker pool control,
//   * WorkerCapScope       — per-thread RAII cap, the substrate of per-query
//                            worker limits (caps compose by minimum and never
//                            touch the process-global value),
//   * parallel_for         — statically scheduled counted loop,
//   * parallel_for_dynamic — dynamically scheduled loop for irregular work
//                            (clique search per edge/vertex is highly skewed).
//
// Both loops degrade to plain serial loops when the range is below the grain
// size or a single worker is configured, which keeps recursion-heavy callers
// cheap and makes single-threaded runs exactly deterministic.
#pragma once

#include <cstddef>
#include <cstdint>

namespace c3 {

/// Maximum number of workers parallel loops may use: the process-global cap
/// (set_num_workers), further limited by any WorkerCapScope active on the
/// calling thread.
[[nodiscard]] int num_workers() noexcept;

/// Caps the worker pool; values < 1 are clamped to 1. Atomically swaps the
/// cap and returns the old effective value, so the usual save/restore pair
///   const int old = set_num_workers(1); ... ; set_num_workers(old);
/// round-trips even under concurrent callers.
int set_num_workers(int workers) noexcept;

/// High-water mark of the worker cap: the largest value num_workers() has
/// been able to return so far (the pool default, raised by every
/// set_num_workers call). Per-worker structures sized to max_workers() stay
/// in bounds across later set_num_workers *decreases and re-increases*; only
/// a cap raised above every previous value can outgrow them (PerWorker
/// bounds-clamps for that case).
[[nodiscard]] int max_workers() noexcept;

/// Identifier of the calling worker in [0, num_workers()).
[[nodiscard]] int worker_id() noexcept;

/// True when called from inside a parallel region.
[[nodiscard]] bool in_parallel() noexcept;

/// RAII cap on num_workers() for the *calling thread* and the parallel loops
/// it launches. Unlike set_num_workers this never touches the process-global
/// cap, so any number of threads may cap themselves concurrently without
/// racing each other (the per-query worker caps of Query/QueryBatch are built
/// on it). Scopes nest and compose by minimum; `cap <= 0` means "no
/// additional cap" and leaves the thread unchanged. The previous per-thread
/// cap is restored on destruction. A capped thread can never raise the
/// effective worker count above the global cap.
class WorkerCapScope {
 public:
  explicit WorkerCapScope(int cap) noexcept;
  ~WorkerCapScope();
  WorkerCapScope(const WorkerCapScope&) = delete;
  WorkerCapScope& operator=(const WorkerCapScope&) = delete;

 private:
  int saved_;
};

namespace detail {
void parallel_for_impl(std::int64_t begin, std::int64_t end, bool dynamic, std::int64_t grain,
                       void (*body)(std::int64_t, void*), void* ctx);
}  // namespace detail

/// Applies `f(i)` for i in [begin, end), statically scheduled. Falls back to
/// a serial loop when the trip count is below `grain` or only one worker is
/// available.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f, std::size_t grain = 2048) {
  auto thunk = [](std::int64_t i, void* ctx) { (*static_cast<F*>(ctx))(static_cast<std::size_t>(i)); };
  detail::parallel_for_impl(static_cast<std::int64_t>(begin), static_cast<std::int64_t>(end),
                            /*dynamic=*/false, static_cast<std::int64_t>(grain), thunk,
                            const_cast<void*>(static_cast<const void*>(&f)));
}

/// Applies `f(i)` for i in [begin, end) with dynamic scheduling — use when
/// per-iteration work is skewed (e.g. per-edge clique search).
template <typename F>
void parallel_for_dynamic(std::size_t begin, std::size_t end, F&& f, std::size_t grain = 16) {
  auto thunk = [](std::int64_t i, void* ctx) { (*static_cast<F*>(ctx))(static_cast<std::size_t>(i)); };
  detail::parallel_for_impl(static_cast<std::int64_t>(begin), static_cast<std::int64_t>(end),
                            /*dynamic=*/true, static_cast<std::int64_t>(grain), thunk,
                            const_cast<void*>(static_cast<const void*>(&f)));
}

}  // namespace c3
