// Tests for the word-level bitset helpers that carry the clique engine.
#include "util/bitwords.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace c3 {
namespace {

TEST(Bitwords, SetTestClearAcrossWordBoundaries) {
  std::vector<std::uint64_t> w(3, 0);
  for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 191u}) {
    EXPECT_FALSE(bits::test_bit(w.data(), i));
    bits::set_bit(w.data(), i);
    EXPECT_TRUE(bits::test_bit(w.data(), i));
  }
  bits::clear_bit(w.data(), 64);
  EXPECT_FALSE(bits::test_bit(w.data(), 64));
  EXPECT_TRUE(bits::test_bit(w.data(), 63));
  EXPECT_TRUE(bits::test_bit(w.data(), 65));
}

TEST(Bitwords, WordsForRounding) {
  EXPECT_EQ(bits::words_for(0), 0u);
  EXPECT_EQ(bits::words_for(1), 1u);
  EXPECT_EQ(bits::words_for(64), 1u);
  EXPECT_EQ(bits::words_for(65), 2u);
  EXPECT_EQ(bits::words_for(128), 2u);
  EXPECT_EQ(bits::words_for(129), 3u);
}

TEST(Bitwords, PopcountAndVariants) {
  std::vector<std::uint64_t> a(2, 0), b(2, 0), c(2, 0);
  for (std::size_t i = 0; i < 128; i += 2) bits::set_bit(a.data(), i);   // evens
  for (std::size_t i = 0; i < 128; i += 3) bits::set_bit(b.data(), i);   // multiples of 3
  for (std::size_t i = 0; i < 128; i += 4) bits::set_bit(c.data(), i);   // multiples of 4
  EXPECT_EQ(bits::popcount(a.data(), 2), 64u);
  EXPECT_EQ(bits::popcount_and(a.data(), b.data(), 2), 22u);   // multiples of 6 in [0,128)
  EXPECT_EQ(bits::popcount_and3(a.data(), b.data(), c.data(), 2), 11u);  // multiples of 12
}

/// Reference implementation of between_mask.
std::vector<std::uint64_t> between_reference(std::size_t lo, std::size_t hi, std::size_t nwords) {
  std::vector<std::uint64_t> w(nwords, 0);
  for (std::size_t i = lo + 1; i < hi; ++i) bits::set_bit(w.data(), i);
  return w;
}

TEST(Bitwords, BetweenMaskMatchesReferenceExhaustively) {
  const std::size_t nbits = 130;
  const std::size_t nwords = bits::words_for(nbits);
  std::vector<std::uint64_t> got(nwords);
  for (std::size_t lo = 0; lo < nbits; lo += 7) {
    for (std::size_t hi = lo; hi < nbits; hi += 5) {
      bits::between_mask(got.data(), lo, hi, nwords);
      ASSERT_EQ(got, between_reference(lo, hi, nwords)) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(Bitwords, BetweenMaskBoundaryBits) {
  std::vector<std::uint64_t> got(2);
  bits::between_mask(got.data(), 62, 66, 2);  // spans the word boundary
  EXPECT_EQ(got, between_reference(62, 66, 2));
  bits::between_mask(got.data(), 63, 64, 2);  // empty interval
  EXPECT_EQ(got, between_reference(63, 64, 2));
  bits::between_mask(got.data(), 0, 127, 2);
  EXPECT_EQ(got, between_reference(0, 127, 2));
}

TEST(Bitwords, FillPrefix) {
  std::vector<std::uint64_t> w(3, ~std::uint64_t{0});
  bits::fill_prefix(w.data(), 70, 3);
  for (std::size_t i = 0; i < 70; ++i) ASSERT_TRUE(bits::test_bit(w.data(), i));
  for (std::size_t i = 70; i < 192; ++i) ASSERT_FALSE(bits::test_bit(w.data(), i));
  bits::fill_prefix(w.data(), 128, 3);
  EXPECT_EQ(bits::popcount(w.data(), 3), 128u);
}

TEST(Bitwords, ForEachBitAscendingOrder) {
  std::vector<std::uint64_t> w(2, 0);
  const std::vector<std::size_t> expect = {0, 5, 63, 64, 100, 127};
  for (const auto i : expect) bits::set_bit(w.data(), i);
  std::vector<std::size_t> got;
  bits::for_each_bit(w.data(), 2, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, expect);
}

TEST(Bitwords, ForEachBitAndIntersects) {
  std::vector<std::uint64_t> a(2, 0), b(2, 0);
  bits::set_bit(a.data(), 3);
  bits::set_bit(a.data(), 70);
  bits::set_bit(a.data(), 90);
  bits::set_bit(b.data(), 70);
  bits::set_bit(b.data(), 90);
  bits::set_bit(b.data(), 120);
  std::vector<std::size_t> got;
  bits::for_each_bit_and(a.data(), b.data(), 2, [&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, (std::vector<std::size_t>{70, 90}));
}

TEST(Bitwords, AndIntoAndAssign) {
  std::vector<std::uint64_t> a = {0xF0F0, 0xFF}, b = {0xFF00, 0x0F}, dst(2);
  bits::and_into(dst.data(), a.data(), b.data(), 2);
  EXPECT_EQ(dst, (std::vector<std::uint64_t>{0xF000, 0x0F}));
  bits::and_assign(a.data(), b.data(), 2);
  EXPECT_EQ(a, dst);
}

}  // namespace
}  // namespace c3
