// Regenerates Figure 8b of the paper: total runtime of c3List vs ArbCount vs
// kcList for clique sizes k = 6..10 on a Ca-DBLP-2012 (collaboration) stand-in.
#include "harness.hpp"

int main(int argc, char** argv) {
  const c3::CommandLine cli(argc, argv);
  const c3::bench::Dataset ds = c3::bench::dblp_like(cli.get_double("scale", 1.0));
  c3::bench::FigureConfig cfg;
  cfg.figure = "Figure 8b";
  cfg.paper_ref = "72T: c3List fastest for k>=8 (k=10: 3106s vs 3744/5218); 13.8-33.7% faster at k=10";
  c3::bench::run_figure(cfg, ds, cli);
  return 0;
}
